//! Job descriptions: what a tenant asks the service to run.
//!
//! A [`JobSpec`] is fully declarative — tenant identity, urgency, a
//! [`Pipeline`] payload and an [`OperandSpec`] describing the input matrix by
//! its random recipe — and round-trips through JSON, so a job file replays
//! bit-identically anywhere.
//!
//! ## Tenant seed namespaces
//!
//! Every random ingredient in the workspace is a pure function of a Philox
//! seed, and independent ingredients *salt* the seed (XOR with a distinct
//! constant — see ARCHITECTURE.md, "Seed-salting contract").  The service
//! extends that contract to tenants: [`JobSpec::salted_pipeline`] XORs a
//! 64-bit FNV-1a hash of the tenant id into every stage seed.  Because XOR is
//! its own inverse and commutes with the existing stage salts, two tenants
//! submitting the *same* pipeline draw disjoint random streams, while one
//! tenant's job is bit-identical whether it runs alone or co-scheduled — the
//! executor's determinism does the rest.

use crate::error::ServeError;
use sketch_core::{JsonValue, Pipeline};
use sketch_la::{Layout, Matrix};
use sketch_rng::fill;
use sketch_sparse::{CooMatrix, CsrMatrix};

/// 64-bit FNV-1a hash of a tenant id: the tenant's Philox seed-namespace salt.
///
/// FNV-1a keeps the salt a pure, dependency-free function of the id bytes, so
/// job files stay portable (no hasher state, no platform variance).
pub fn tenant_salt(tenant: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in tenant.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How urgently a job needs to run, ordered within a tenant ahead of priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeadlineClass {
    /// Latency-sensitive: scheduled before everything else the tenant queued.
    Interactive,
    /// The default service class.
    #[default]
    Standard,
    /// Throughput work: runs when nothing more urgent is queued.
    Batch,
}

impl DeadlineClass {
    /// Scheduling rank — lower runs first.
    pub fn rank(&self) -> u8 {
        match self {
            DeadlineClass::Interactive => 0,
            DeadlineClass::Standard => 1,
            DeadlineClass::Batch => 2,
        }
    }

    /// Stable string form used in JSON job files.
    pub fn as_str(&self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Standard => "standard",
            DeadlineClass::Batch => "batch",
        }
    }

    /// Parse the JSON string form.
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        match text {
            "interactive" => Ok(DeadlineClass::Interactive),
            "standard" => Ok(DeadlineClass::Standard),
            "batch" => Ok(DeadlineClass::Batch),
            other => Err(ServeError::spec(format!(
                "unknown deadline class {other:?} (expected interactive|standard|batch)"
            ))),
        }
    }
}

/// A declarative operand: the input matrix described by its random recipe, so
/// the job file carries no payload bytes and every replay materialises the
/// same operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperandSpec {
    /// A dense Gaussian matrix (`Matrix::random_gaussian(rows, cols, seed)`).
    Dense {
        /// Operand rows (`d`).
        rows: usize,
        /// Operand columns (`n`).
        cols: usize,
        /// Philox seed of the entries.
        seed: u64,
    },
    /// A sparse CSR matrix from a Philox `(row, col, value)` scatter.
    ///
    /// Coincident draws merge, so the stored `nnz` lands at or slightly below
    /// `nnz_target` — deterministically, since the scatter is seed-driven.
    Csr {
        /// Operand rows (`d`).
        rows: usize,
        /// Operand columns (`n`).
        cols: usize,
        /// Number of random draws (upper bound on stored nonzeros).
        nnz_target: usize,
        /// Philox seed of the scatter.
        seed: u64,
    },
}

/// A materialised operand, ready to hand to the executor.
#[derive(Debug, Clone)]
pub enum OperandData {
    /// A dense operand.
    Dense(Matrix),
    /// A sparse CSR operand.
    Csr(CsrMatrix),
}

impl OperandSpec {
    /// Operand rows.
    pub fn rows(&self) -> usize {
        match self {
            OperandSpec::Dense { rows, .. } | OperandSpec::Csr { rows, .. } => *rows,
        }
    }

    /// Operand columns.
    pub fn cols(&self) -> usize {
        match self {
            OperandSpec::Dense { cols, .. } | OperandSpec::Csr { cols, .. } => *cols,
        }
    }

    /// Modelled stored entries, used by the admission flop model: `rows*cols`
    /// for dense operands, the draw target for sparse ones.
    pub fn modelled_nnz(&self) -> u64 {
        match self {
            OperandSpec::Dense { rows, cols, .. } => (*rows as u64) * (*cols as u64),
            OperandSpec::Csr { nnz_target, .. } => *nnz_target as u64,
        }
    }

    /// Materialise the operand from its recipe (deterministic per spec).
    pub fn materialize(&self) -> OperandData {
        match *self {
            OperandSpec::Dense { rows, cols, seed } => OperandData::Dense(Matrix::random_gaussian(
                rows,
                cols,
                Layout::RowMajor,
                seed,
                0,
            )),
            OperandSpec::Csr {
                rows,
                cols,
                nnz_target,
                seed,
            } => {
                let draws = nnz_target.max(1);
                let rr = fill::uniform_index_vec(seed, 10, draws, rows);
                let cc = fill::uniform_index_vec(seed, 11, draws, cols);
                let vv = fill::gaussian_vec(seed, 12, draws);
                let mut coo = CooMatrix::with_capacity(rows, cols, draws);
                for i in 0..draws {
                    coo.push(rr[i], cc[i], vv[i]);
                }
                OperandData::Csr(CsrMatrix::from_coo(&coo))
            }
        }
    }

    /// Serialize to a [`JsonValue`] (`{"dense": {...}}` or `{"csr": {...}}`).
    pub fn to_json_value(&self) -> JsonValue {
        match *self {
            OperandSpec::Dense { rows, cols, seed } => JsonValue::Object(vec![(
                "dense".into(),
                JsonValue::Object(vec![
                    ("rows".into(), JsonValue::UInt(rows as u64)),
                    ("cols".into(), JsonValue::UInt(cols as u64)),
                    ("seed".into(), JsonValue::UInt(seed)),
                ]),
            )]),
            OperandSpec::Csr {
                rows,
                cols,
                nnz_target,
                seed,
            } => JsonValue::Object(vec![(
                "csr".into(),
                JsonValue::Object(vec![
                    ("rows".into(), JsonValue::UInt(rows as u64)),
                    ("cols".into(), JsonValue::UInt(cols as u64)),
                    ("nnz_target".into(), JsonValue::UInt(nnz_target as u64)),
                    ("seed".into(), JsonValue::UInt(seed)),
                ]),
            )]),
        }
    }

    /// Parse from a [`JsonValue`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, ServeError> {
        let field = |obj: &JsonValue, key: &str| -> Result<u64, ServeError> {
            obj.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| ServeError::spec(format!("operand is missing \"{key}\"")))
        };
        if let Some(dense) = value.get("dense") {
            return Ok(OperandSpec::Dense {
                rows: field(dense, "rows")? as usize,
                cols: field(dense, "cols")? as usize,
                seed: field(dense, "seed")?,
            });
        }
        if let Some(csr) = value.get("csr") {
            return Ok(OperandSpec::Csr {
                rows: field(csr, "rows")? as usize,
                cols: field(csr, "cols")? as usize,
                nnz_target: field(csr, "nnz_target")? as usize,
                seed: field(csr, "seed")?,
            });
        }
        Err(ServeError::spec(
            "operand must be {\"dense\": {...}} or {\"csr\": {...}}",
        ))
    }
}

/// One tenant request: identity, urgency, resources asked for, and the
/// declarative payload (pipeline + operand recipe).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Tenant identity — also the job's Philox seed namespace.
    pub tenant: String,
    /// Within-tenant urgency among jobs of the same deadline class
    /// (higher runs first).
    pub priority: u8,
    /// Deadline class (orders within a tenant ahead of priority).
    pub deadline: DeadlineClass,
    /// How many devices the job asks for (clamped to the pool size; ≥ 1).
    pub devices: usize,
    /// Modelled arrival time on the service clock, seconds.
    pub arrival_s: f64,
    /// The sketch pipeline to execute.
    pub pipeline: Pipeline,
    /// The operand recipe.
    pub operand: OperandSpec,
}

impl JobSpec {
    /// A standard-class, priority-0, single-device job arriving at `t = 0`.
    pub fn new(tenant: impl Into<String>, pipeline: Pipeline, operand: OperandSpec) -> Self {
        Self {
            tenant: tenant.into(),
            priority: 0,
            deadline: DeadlineClass::Standard,
            devices: 1,
            arrival_s: 0.0,
            pipeline,
            operand,
        }
    }

    /// Set the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Set the deadline class.
    #[must_use]
    pub fn with_deadline(mut self, deadline: DeadlineClass) -> Self {
        self.deadline = deadline;
        self
    }

    /// Set the device ask (≥ 1).
    #[must_use]
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        self
    }

    /// Set the modelled arrival time.
    #[must_use]
    pub fn with_arrival(mut self, arrival_s: f64) -> Self {
        self.arrival_s = arrival_s.max(0.0);
        self
    }

    /// The tenant's seed-namespace salt (see [`tenant_salt`]).
    pub fn tenant_salt(&self) -> u64 {
        tenant_salt(&self.tenant)
    }

    /// The pipeline with every stage seed XOR-salted into the tenant's
    /// namespace.  This is what the scheduler actually executes: the XOR
    /// commutes with intra-pipeline stage salts (e.g. the Count-Gauss second
    /// stage), so tenant isolation composes with the existing contract.
    pub fn salted_pipeline(&self) -> Pipeline {
        let salt = self.tenant_salt();
        let mut plan = self.pipeline.clone();
        for stage in &mut plan.stages {
            stage.seed ^= salt;
        }
        plan
    }

    /// Modelled bytes of sketch output the job produces: each resolved stage's
    /// `k × n` doubles, plus the dense operator storage of Gaussian stages
    /// (`d × k` doubles) — the admission controller's byte model.
    pub fn sketch_output_bytes(&self) -> Result<u64, ServeError> {
        let n = self.operand.cols() as u64;
        let resolved = self.pipeline.resolve(self.operand.cols())?;
        let mut bytes = 0u64;
        for stage in &resolved {
            let k = stage.output_dim.resolve(self.operand.cols()) as u64;
            bytes += 8 * k * n;
            if stage.kind == sketch_core::SketchKind::Gaussian {
                bytes += 8 * k * stage.input_dim as u64;
            }
        }
        Ok(bytes)
    }

    /// Modelled flops of the job, per resolved stage: `2·nnz` for the
    /// CountSketch families (one multiply-add per stored entry), `2·d·k·n` for
    /// Gaussian GEMMs, `n·d·log2(d)` for the SRHT's FWHT — the admission
    /// controller's compute model.  The first stage sees the operand's
    /// (modelled) sparsity; later stages see a dense `k_prev × n`
    /// intermediate.
    pub fn modelled_flops(&self) -> Result<u64, ServeError> {
        use sketch_core::SketchKind;
        let n = self.operand.cols() as u64;
        let resolved = self.pipeline.resolve(self.operand.cols())?;
        let mut flops = 0u64;
        let mut stage_nnz = self.operand.modelled_nnz();
        for stage in &resolved {
            let d = stage.input_dim as u64;
            let k = stage.output_dim.resolve(self.operand.cols()) as u64;
            flops += match stage.kind {
                SketchKind::CountSketch | SketchKind::HashCountSketch => 2 * stage_nnz,
                SketchKind::Gaussian => 2 * d * k * n,
                SketchKind::Srht => {
                    let log_d = (64 - d.max(2).leading_zeros()) as u64;
                    n * d * log_d
                }
                // `SketchKind` is non-exhaustive: bound unknown kinds by the
                // dense GEMM cost so admission stays conservative, not panicky.
                _ => 2 * d * k * n,
            };
            // The intermediate handed to the next stage is dense k × n.
            stage_nnz = k * n;
        }
        Ok(flops)
    }

    /// Serialize to a [`JsonValue`].
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("tenant".into(), JsonValue::Str(self.tenant.clone())),
            ("priority".into(), JsonValue::UInt(self.priority as u64)),
            (
                "deadline".into(),
                JsonValue::Str(self.deadline.as_str().into()),
            ),
            ("devices".into(), JsonValue::UInt(self.devices as u64)),
            ("arrival_s".into(), JsonValue::Float(self.arrival_s)),
            ("pipeline".into(), self.pipeline.to_json_value()),
            ("operand".into(), self.operand.to_json_value()),
        ])
    }

    /// Parse from a [`JsonValue`].  `priority`, `deadline`, `devices` and
    /// `arrival_s` are optional (defaulting to 0 / standard / 1 / 0.0).
    pub fn from_json_value(value: &JsonValue) -> Result<Self, ServeError> {
        let tenant = value
            .get("tenant")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ServeError::spec("job is missing \"tenant\""))?
            .to_string();
        if tenant.is_empty() {
            return Err(ServeError::spec("\"tenant\" must not be empty"));
        }
        let priority = match value.get("priority") {
            Some(p) => p
                .as_u64()
                .filter(|&p| p <= u8::MAX as u64)
                .ok_or_else(|| ServeError::spec("\"priority\" must be an integer in 0..=255"))?
                as u8,
            None => 0,
        };
        let deadline = match value.get("deadline") {
            Some(d) => DeadlineClass::parse(
                d.as_str()
                    .ok_or_else(|| ServeError::spec("\"deadline\" must be a string"))?,
            )?,
            None => DeadlineClass::Standard,
        };
        let devices = match value.get("devices") {
            Some(d) => d
                .as_usize()
                .filter(|&d| d >= 1)
                .ok_or_else(|| ServeError::spec("\"devices\" must be an integer >= 1"))?,
            None => 1,
        };
        let arrival_s = match value.get("arrival_s") {
            Some(a) => a
                .as_f64()
                .filter(|a| a.is_finite() && *a >= 0.0)
                .ok_or_else(|| ServeError::spec("\"arrival_s\" must be a non-negative number"))?,
            None => 0.0,
        };
        let pipeline = Pipeline::from_json_value(
            value
                .get("pipeline")
                .ok_or_else(|| ServeError::spec("job is missing \"pipeline\""))?,
        )?;
        let operand = OperandSpec::from_json_value(
            value
                .get("operand")
                .ok_or_else(|| ServeError::spec("job is missing \"operand\""))?,
        )?;
        Ok(Self {
            tenant,
            priority,
            deadline,
            devices,
            arrival_s,
            pipeline,
            operand,
        })
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse from a JSON string.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_core::{EmbeddingDim, SketchSpec};

    fn sample_job() -> JobSpec {
        JobSpec::new(
            "acme",
            Pipeline::single(SketchSpec::countsketch(512, EmbeddingDim::Square(2), 7)),
            OperandSpec::Dense {
                rows: 512,
                cols: 6,
                seed: 42,
            },
        )
        .with_priority(3)
        .with_deadline(DeadlineClass::Interactive)
        .with_devices(2)
        .with_arrival(0.25)
    }

    #[test]
    fn tenant_salt_is_stable_and_distinct() {
        assert_eq!(tenant_salt("acme"), tenant_salt("acme"));
        assert_ne!(tenant_salt("acme"), tenant_salt("bravo"));
        assert_ne!(tenant_salt(""), 0);
    }

    #[test]
    fn salted_pipeline_namespaces_every_stage() {
        let job = sample_job();
        let salted = job.salted_pipeline();
        for (orig, salt) in job.pipeline.stages.iter().zip(&salted.stages) {
            assert_eq!(orig.seed ^ job.tenant_salt(), salt.seed);
        }
        // Salting commutes with the Count-Gauss intra-pipeline salt.
        let cg = JobSpec::new(
            "acme",
            Pipeline::count_gauss(512, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 9),
            OperandSpec::Dense {
                rows: 512,
                cols: 6,
                seed: 1,
            },
        );
        let salted = cg.salted_pipeline();
        let relation = cg.pipeline.stages[0].seed ^ cg.pipeline.stages[1].seed;
        assert_eq!(salted.stages[0].seed ^ salted.stages[1].seed, relation);
    }

    #[test]
    fn job_round_trips_through_json() {
        let job = sample_job();
        let parsed = JobSpec::from_json(&job.to_json()).unwrap();
        assert_eq!(parsed, job);
        // CSR operands too.
        let sparse = JobSpec::new(
            "bravo",
            Pipeline::single(SketchSpec::countsketch(256, EmbeddingDim::Exact(64), 3)),
            OperandSpec::Csr {
                rows: 256,
                cols: 8,
                nnz_target: 100,
                seed: 5,
            },
        );
        assert_eq!(JobSpec::from_json(&sparse.to_json()).unwrap(), sparse);
    }

    #[test]
    fn json_defaults_apply() {
        let text = r#"{
            "tenant": "t",
            "pipeline": {"stages": [{"kind": "count-sketch", "input_dim": 64,
                                     "output_dim": {"exact": 32}, "seed": 1}]},
            "operand": {"dense": {"rows": 64, "cols": 4, "seed": 2}}
        }"#;
        let job = JobSpec::from_json(text).unwrap();
        assert_eq!(job.priority, 0);
        assert_eq!(job.deadline, DeadlineClass::Standard);
        assert_eq!(job.devices, 1);
        assert_eq!(job.arrival_s, 0.0);
    }

    #[test]
    fn malformed_jobs_are_typed_errors() {
        for text in [
            "{}",
            r#"{"tenant": ""}"#,
            r#"{"tenant": "t", "pipeline": {"stages": []}}"#,
            r#"{"tenant": "t", "deadline": "soon",
                "pipeline": {"stages": [{"kind": "count-sketch", "input_dim": 64,
                                         "output_dim": {"exact": 32}, "seed": 1}]},
                "operand": {"dense": {"rows": 64, "cols": 4, "seed": 2}}}"#,
            r#"{"tenant": "t",
                "pipeline": {"stages": [{"kind": "count-sketch", "input_dim": 64,
                                         "output_dim": {"exact": 32}, "seed": 1}]},
                "operand": {"unknown": {}}}"#,
        ] {
            assert!(JobSpec::from_json(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn operands_materialise_deterministically() {
        let spec = OperandSpec::Csr {
            rows: 128,
            cols: 8,
            nnz_target: 200,
            seed: 11,
        };
        let (a, b) = (spec.materialize(), spec.materialize());
        match (a, b) {
            (OperandData::Csr(a), OperandData::Csr(b)) => {
                assert_eq!(a.nnz(), b.nnz());
                assert!(a.nnz() <= 200 && a.nnz() > 0);
            }
            _ => panic!("csr spec materialises csr"),
        }
        let dense = OperandSpec::Dense {
            rows: 16,
            cols: 4,
            seed: 1,
        };
        match (dense.materialize(), dense.materialize()) {
            (OperandData::Dense(a), OperandData::Dense(b)) => {
                assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
            }
            _ => panic!("dense spec materialises dense"),
        }
    }

    #[test]
    fn admission_models_scale_with_the_job() {
        let small = sample_job();
        let mut big = sample_job();
        big.operand = OperandSpec::Dense {
            rows: 2048,
            cols: 6,
            seed: 42,
        };
        big.pipeline = Pipeline::single(SketchSpec::countsketch(2048, EmbeddingDim::Square(2), 7));
        assert!(big.modelled_flops().unwrap() > small.modelled_flops().unwrap());
        // Gaussian stages pay for dense operator storage in the byte model.
        let gauss = JobSpec::new(
            "t",
            Pipeline::single(SketchSpec::gaussian(512, EmbeddingDim::Ratio(2), 1)),
            OperandSpec::Dense {
                rows: 512,
                cols: 6,
                seed: 1,
            },
        );
        let count = JobSpec::new(
            "t",
            Pipeline::single(SketchSpec::countsketch(512, EmbeddingDim::Ratio(2), 1)),
            OperandSpec::Dense {
                rows: 512,
                cols: 6,
                seed: 1,
            },
        );
        assert!(gauss.sketch_output_bytes().unwrap() > count.sketch_output_bytes().unwrap());
    }
}
