//! Packing admitted jobs onto the shared [`DevicePool`].
//!
//! The [`Scheduler`] walks jobs in queue (fairness) order and greedily claims,
//! for each job, the devices that free up earliest — a `devices = 1` job takes
//! one idle device while another tenant's job runs beside it, which is where
//! co-scheduling beats FIFO one-job-at-a-time.  Each claim becomes a
//! [`DevicePool::subpool`] view, the job runs through the ordinary
//! `pipelined_sketch` engine on it, and the per-job timeline is merged (with
//! the job's start offset and its physical device ordinals) into one
//! service-level [`Timeline`] — the modelled cluster clock.
//!
//! Determinism: claims are resolved by `(free-up time, lowest ordinal)`, jobs
//! execute with their tenant-salted pipelines, and the executor itself is
//! bit-deterministic — so a job's numerical result is identical whether it
//! runs alone on a fresh pool or co-scheduled here (pinned by the isolation
//! suite).
//!
//! [`Scheduler::run_fifo`] is the baseline the service must beat: the same
//! jobs, same order, but each one monopolises the whole pool.

use crate::admission::AdmissionController;
use crate::error::{RejectReason, ServeError};
use crate::job::{DeadlineClass, OperandData};
use crate::queue::QueuedJob;
use sketch_core::Operand;
use sketch_dist::{pipelined_sketch, ExecutorOptions, PipelinedRun};
use sketch_gpu_sim::{DevicePool, StreamKind, Timeline};
use sketch_obs::{CostBreakdown, TraceEvent, Track};

/// One job as actually scheduled: when, where, and what came out.
#[derive(Debug, Clone)]
pub struct ScheduledJob {
    /// The submitting tenant.
    pub tenant: String,
    /// Queue sequence number of the job.
    pub seq: u64,
    /// Modelled arrival time, seconds.
    pub arrival_s: f64,
    /// Modelled start time on the cluster clock, seconds.
    pub start: f64,
    /// Modelled completion time, seconds.
    pub end: f64,
    /// Physical device ordinals the job occupied (sorted).
    pub device_ordinals: Vec<usize>,
    /// The executor's result for the job (bits + per-job timeline + costs).
    pub run: PipelinedRun,
}

impl ScheduledJob {
    /// Seconds the job waited between arrival and start.
    pub fn queue_wait(&self) -> f64 {
        (self.start - self.arrival_s).max(0.0)
    }
}

/// A job the scheduler gave up on: every execution attempt died with a device
/// failure and the tenant's retry budget (or the pool) ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbandonedJob {
    /// The submitting tenant.
    pub tenant: String,
    /// Queue sequence number of the job.
    pub seq: u64,
    /// The typed reason — always
    /// [`RejectReason::RetriesExhausted`] today, kept open for future
    /// scheduler-side refusals.
    pub reason: RejectReason,
    /// Execution attempts that failed before the job was abandoned.
    pub attempts: usize,
}

/// The service-level outcome: every scheduled job plus the merged cluster
/// timeline.
#[derive(Debug, Clone)]
pub struct ServiceRun {
    /// Jobs in execution (queue) order.
    pub jobs: Vec<ScheduledJob>,
    /// Jobs abandoned after exhausting their retry budget on dying devices.
    pub abandoned: Vec<AbandonedJob>,
    /// Execution attempts re-run because an earlier attempt hit a dead device.
    pub retries: u64,
    /// Straggler devices displaced from interactive jobs' claims (the
    /// deadline-aware eviction decision).
    pub evictions: u64,
    /// The merged cluster timeline (device rows are physical ordinals).
    pub timeline: Timeline,
    /// Devices in the pool the run was packed onto.
    pub devices: usize,
}

impl ServiceRun {
    /// Completion time of the last job — the mixed workload's makespan.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }

    /// Per-physical-device utilization over the service makespan.
    pub fn utilizations(&self) -> Vec<f64> {
        self.timeline.utilizations()
    }

    /// Export the whole service run as costed trace events on the physical
    /// device tracks, jobs laid out at their scheduled offsets.
    ///
    /// Events are emitted job-by-job in start order; since a device's jobs
    /// never overlap and each job's per-stream entries are monotone, every
    /// `(device, stream)` sim track stays monotone and non-overlapping — the
    /// invariant the workspace trace validator enforces.
    pub fn to_trace_events(&self) -> Vec<TraceEvent> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let (ja, jb) = (&self.jobs[a], &self.jobs[b]);
            ja.start
                .partial_cmp(&jb.start)
                .expect("finite start times")
                .then(ja.seq.cmp(&jb.seq))
        });
        let mut events = Vec::new();
        for idx in order {
            let job = &self.jobs[idx];
            for entry in job.run.timeline.entries() {
                events.push(TraceEvent {
                    name: format!("{}#{} {}", job.tenant, job.seq, entry.label),
                    device: job.device_ordinals[entry.device],
                    track: match entry.stream {
                        StreamKind::Compute => Track::Compute,
                        StreamKind::Comm => Track::Comm,
                    },
                    sim: Some((entry.start + job.start, entry.end + job.start)),
                    wall_ns: 0,
                    cost: CostBreakdown::default(),
                });
            }
        }
        events
    }
}

/// Greedy device-packing scheduler over a shared pool.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    opts: ExecutorOptions,
}

impl Scheduler {
    /// A scheduler running jobs with default [`ExecutorOptions`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the executor options every job runs with.
    #[must_use]
    pub fn with_options(mut self, opts: ExecutorOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Materialise and execute one job on `pool` with its tenant-salted
    /// pipeline.
    fn execute(&self, pool: &DevicePool, job: &QueuedJob) -> Result<PipelinedRun, ServeError> {
        let plan = job.job.salted_pipeline();
        let run = match job.job.operand.materialize() {
            OperandData::Dense(m) => pipelined_sketch(pool, &m, &plan, &self.opts)?,
            OperandData::Csr(c) => pipelined_sketch(pool, Operand::Csr(&c), &plan, &self.opts)?,
        };
        Ok(run)
    }

    /// Co-schedule `jobs` (in the given order) onto disjoint device subsets of
    /// `pool`.
    ///
    /// Each job claims the `devices` it asked for (clamped to the pool size),
    /// choosing the devices that free up earliest — ties to the lowest
    /// ordinal — and starts when all its claimed devices are free and the job
    /// has arrived.  Independent single-device jobs therefore run beside each
    /// other; a full-pool job naturally drains the cluster first.
    pub fn run(&self, pool: &DevicePool, jobs: &[QueuedJob]) -> Result<ServiceRun, ServeError> {
        self.run_with_admission(pool, jobs, &AdmissionController::new())
    }

    /// [`Scheduler::run`] with a retry policy: a job whose execution dies with
    /// a device failure (every device in its claim dead) is requeued onto the
    /// still-live devices, up to the tenant's
    /// [`max_retries`](crate::TenantLimits::max_retries) budget; past the
    /// budget — or with no live device left — the job is *abandoned* with a
    /// typed [`RejectReason::RetriesExhausted`], never a hard error.
    ///
    /// Stragglers feed the claim decision: an
    /// [interactive](DeadlineClass::Interactive) job whose earliest-free claim
    /// would include a slowed device is rerouted onto healthy devices when
    /// enough exist, and each displaced straggler counts as an eviction.  On a
    /// healthy pool every decision reduces to the plain earliest-free claim,
    /// so clean runs are bit-identical to [`Scheduler::run`].
    pub fn run_with_admission(
        &self,
        pool: &DevicePool,
        jobs: &[QueuedJob],
        admission: &AdmissionController,
    ) -> Result<ServiceRun, ServeError> {
        let p = pool.num_devices();
        let mut free_at = vec![0.0f64; p];
        let mut timeline = Timeline::with_devices(p);
        let mut scheduled = Vec::with_capacity(jobs.len());
        let mut abandoned = Vec::new();
        let mut retries = 0u64;
        let mut evictions = 0u64;
        for qj in jobs {
            let max_retries = admission.limits_for(&qj.job.tenant).max_retries;
            let mut attempts = 0usize;
            loop {
                // Sticky death flags shrink the usable set between attempts,
                // so even an unlimited retry budget terminates.
                let usable: Vec<usize> = (0..p).filter(|&d| !pool.device(d).is_failed()).collect();
                if usable.is_empty() {
                    abandoned.push(AbandonedJob {
                        tenant: qj.job.tenant.clone(),
                        seq: qj.seq,
                        reason: RejectReason::RetriesExhausted { attempts },
                        attempts,
                    });
                    break;
                }
                let want = qj.job.devices.clamp(1, usable.len());
                let by_free = |devs: &[usize]| {
                    let mut order = devs.to_vec();
                    order.sort_by(|&a, &b| {
                        free_at[a]
                            .partial_cmp(&free_at[b])
                            .expect("finite free times")
                            .then(a.cmp(&b))
                    });
                    order.truncate(want);
                    order.sort_unstable();
                    order
                };
                let mut claimed = by_free(&usable);
                if qj.job.deadline == DeadlineClass::Interactive {
                    let straggling = claimed
                        .iter()
                        .filter(|&&d| pool.device(d).time_scale() > 1.0)
                        .count() as u64;
                    if straggling > 0 {
                        let healthy: Vec<usize> = usable
                            .iter()
                            .copied()
                            .filter(|&d| pool.device(d).time_scale() <= 1.0)
                            .collect();
                        if healthy.len() >= want {
                            claimed = by_free(&healthy);
                            evictions += straggling;
                        }
                    }
                }
                let start = claimed
                    .iter()
                    .fold(qj.job.arrival_s, |acc, &d| acc.max(free_at[d]));
                let sub = pool.subpool(&claimed)?;
                match self.execute(&sub, qj) {
                    Ok(run) => {
                        let end = start + run.pipelined_seconds;
                        for &d in &claimed {
                            free_at[d] = end;
                        }
                        timeline.merge_shifted(&run.timeline, start, &claimed);
                        scheduled.push(ScheduledJob {
                            tenant: qj.job.tenant.clone(),
                            seq: qj.seq,
                            arrival_s: qj.job.arrival_s,
                            start,
                            end,
                            device_ordinals: claimed,
                            run,
                        });
                        break;
                    }
                    Err(ServeError::Core(e)) if e.is_device_failure() => {
                        attempts += 1;
                        if attempts > max_retries {
                            abandoned.push(AbandonedJob {
                                tenant: qj.job.tenant.clone(),
                                seq: qj.seq,
                                reason: RejectReason::RetriesExhausted { attempts },
                                attempts,
                            });
                            break;
                        }
                        retries += 1;
                    }
                    Err(other) => return Err(other),
                }
            }
        }
        Ok(ServiceRun {
            jobs: scheduled,
            abandoned,
            retries,
            evictions,
            timeline,
            devices: p,
        })
    }

    /// The FIFO one-job-at-a-time baseline: same jobs, same order, but every
    /// job monopolises the whole pool.  This is the makespan the co-scheduler
    /// must strictly beat on mixed single-device workloads (the `fig_serve`
    /// gate).
    pub fn run_fifo(
        &self,
        pool: &DevicePool,
        jobs: &[QueuedJob],
    ) -> Result<ServiceRun, ServeError> {
        let whole: Vec<QueuedJob> = jobs
            .iter()
            .map(|qj| {
                let mut qj = qj.clone();
                qj.job.devices = pool.num_devices();
                qj
            })
            .collect();
        self.run(pool, &whole)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, OperandSpec};
    use crate::queue::JobQueue;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
    use std::collections::BTreeMap;

    fn one_device_job(tenant: &str, seed: u64) -> JobSpec {
        JobSpec::new(
            tenant,
            Pipeline::single(SketchSpec::countsketch(
                1 << 10,
                EmbeddingDim::Square(2),
                seed,
            )),
            OperandSpec::Dense {
                rows: 1 << 10,
                cols: 6,
                seed,
            },
        )
    }

    fn queued(jobs: Vec<JobSpec>) -> Vec<QueuedJob> {
        let mut q = JobQueue::new(jobs.len().max(1));
        for j in jobs {
            q.push(j).unwrap();
        }
        q.drain()
    }

    #[test]
    fn single_device_jobs_pack_onto_disjoint_devices() {
        let pool = DevicePool::unlimited(2);
        let jobs = queued(vec![
            one_device_job("a", 1),
            one_device_job("b", 2),
            one_device_job("c", 3),
            one_device_job("d", 4),
        ]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        assert_eq!(run.jobs.len(), 4);
        // First two jobs start together on different devices.
        assert_eq!(run.jobs[0].start, 0.0);
        assert_eq!(run.jobs[1].start, 0.0);
        assert_ne!(run.jobs[0].device_ordinals, run.jobs[1].device_ordinals);
        // Later jobs wait for a device to free up.
        assert!(run.jobs[2].start > 0.0);
        assert!(run.jobs[2].queue_wait() > 0.0);
        // No device ever runs two jobs at once.
        let mut windows: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
        for j in &run.jobs {
            for &d in &j.device_ordinals {
                windows.entry(d).or_default().push((j.start, j.end));
            }
        }
        for (_, mut w) in windows {
            w.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for pair in w.windows(2) {
                assert!(pair[0].1 <= pair[1].0 + 1e-12, "jobs overlap on a device");
            }
        }
    }

    #[test]
    fn co_scheduling_beats_fifo_on_independent_jobs() {
        let pool = DevicePool::unlimited(2);
        let jobs = queued(vec![
            one_device_job("a", 1),
            one_device_job("b", 2),
            one_device_job("c", 3),
            one_device_job("d", 4),
        ]);
        let sched = Scheduler::new();
        let cosched = sched.run(&pool, &jobs).unwrap();
        let fifo = sched.run_fifo(&pool, &jobs).unwrap();
        assert!(
            cosched.makespan() < fifo.makespan(),
            "co-scheduled {} >= fifo {}",
            cosched.makespan(),
            fifo.makespan()
        );
    }

    #[test]
    fn results_match_solo_runs_bitwise() {
        let pool = DevicePool::unlimited(2);
        let jobs = queued(vec![one_device_job("a", 1), one_device_job("b", 2)]);
        let cosched = Scheduler::new().run(&pool, &jobs).unwrap();
        for (qj, scheduled) in jobs.iter().zip(&cosched.jobs) {
            let fresh = DevicePool::unlimited(1);
            let solo = Scheduler::new()
                .run(&fresh, std::slice::from_ref(qj))
                .unwrap();
            assert_eq!(
                scheduled.run.result.max_abs_diff(&solo.jobs[0].run.result),
                Ok(0.0),
                "tenant {} diverged under co-scheduling",
                qj.job.tenant
            );
        }
    }

    #[test]
    fn full_pool_jobs_serialise() {
        let pool = DevicePool::unlimited(2);
        let jobs = queued(vec![
            one_device_job("a", 1).with_devices(2),
            one_device_job("b", 2).with_devices(2),
        ]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        assert_eq!(run.jobs[0].device_ordinals, vec![0, 1]);
        assert!((run.jobs[1].start - run.jobs[0].end).abs() < 1e-12);
        // Oversized asks clamp to the pool.
        let big = queued(vec![one_device_job("a", 1).with_devices(64)]);
        let run = Scheduler::new().run(&pool, &big).unwrap();
        assert_eq!(run.jobs[0].device_ordinals, vec![0, 1]);
    }

    #[test]
    fn arrivals_delay_starts() {
        let pool = DevicePool::unlimited(2);
        let jobs = queued(vec![one_device_job("a", 1).with_arrival(5.0)]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        assert_eq!(run.jobs[0].start, 5.0);
        assert_eq!(run.jobs[0].queue_wait(), 0.0);
    }

    #[test]
    fn service_timeline_lands_on_physical_ordinals() {
        let pool = DevicePool::unlimited(4);
        let jobs = queued(vec![
            one_device_job("a", 1),
            one_device_job("b", 2),
            one_device_job("c", 3),
            one_device_job("d", 4),
        ]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        // All four devices carried work, concurrently.
        for d in 0..4 {
            assert!(run.timeline.busy_seconds(d) > 0.0, "device {d} idle");
        }
        assert!(run.makespan() < run.timeline.serial_seconds());
        assert_eq!(run.utilizations().len(), 4);
    }

    #[test]
    fn dead_device_jobs_retry_onto_survivors_bitwise() {
        use sketch_gpu_sim::{FaultPlan, FaultSpec};

        let pool = DevicePool::unlimited(2);
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            0,
            FaultSpec::Dies {
                after_sim_seconds: 0.0,
            },
        ));
        let jobs = queued(vec![one_device_job("a", 1)]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        assert_eq!(run.jobs.len(), 1);
        assert_eq!(run.retries, 1, "first claim lands on the dying device");
        assert!(run.abandoned.is_empty());
        assert_eq!(run.jobs[0].device_ordinals, vec![1]);

        let fresh = DevicePool::unlimited(1);
        let solo = Scheduler::new().run(&fresh, &jobs).unwrap();
        assert_eq!(
            run.jobs[0]
                .run
                .result
                .max_abs_diff(&solo.jobs[0].run.result),
            Ok(0.0),
            "retried job diverged from the solo run"
        );
    }

    #[test]
    fn exhausted_retry_budget_abandons_with_typed_reason() {
        use crate::admission::{AdmissionController, TenantLimits};
        use crate::error::RejectReason;
        use sketch_gpu_sim::{FaultPlan, FaultSpec};

        let pool = DevicePool::unlimited(1);
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            0,
            FaultSpec::Dies {
                after_sim_seconds: 0.0,
            },
        ));
        let jobs = queued(vec![one_device_job("a", 1)]);
        let admission = AdmissionController::new()
            .with_tenant("a", TenantLimits::unlimited().with_max_retries(0));
        let run = Scheduler::new()
            .run_with_admission(&pool, &jobs, &admission)
            .unwrap();
        assert!(run.jobs.is_empty());
        assert_eq!(run.abandoned.len(), 1);
        assert_eq!(
            run.abandoned[0].reason,
            RejectReason::RetriesExhausted { attempts: 1 }
        );
        assert_eq!(run.retries, 0, "a zero budget never re-runs the job");

        // With an unlimited budget the same pool still abandons — no live
        // device remains — but only after the sticky flag is observed.
        let jobs = queued(vec![one_device_job("b", 2)]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        assert_eq!(run.abandoned.len(), 1);
        assert_eq!(run.abandoned[0].attempts, 0, "refused before any attempt");
    }

    #[test]
    fn interactive_jobs_evict_stragglers_from_their_claims() {
        use crate::job::DeadlineClass;
        use sketch_gpu_sim::{FaultPlan, FaultSpec};

        let pool = DevicePool::unlimited(2);
        pool.apply_fault_plan(&FaultPlan::healthy().with_fault(
            0,
            FaultSpec::Straggler {
                slowdown_factor: 8.0,
            },
        ));
        // The earliest-free tie would pick ordinal 0; the interactive job is
        // rerouted to the healthy device, the standard job is not.
        let jobs = queued(vec![
            one_device_job("fast", 1).with_deadline(DeadlineClass::Interactive),
            one_device_job("slow", 2),
        ]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        assert_eq!(run.jobs[0].device_ordinals, vec![1]);
        assert_eq!(run.evictions, 1);
        assert_eq!(run.jobs[1].device_ordinals, vec![0]);
        // When every device straggles there is nowhere to evict to.
        let all_slow = DevicePool::unlimited(1);
        all_slow.apply_fault_plan(&FaultPlan::healthy().with_fault(
            0,
            FaultSpec::Straggler {
                slowdown_factor: 2.0,
            },
        ));
        let jobs = queued(vec![
            one_device_job("t", 3).with_deadline(DeadlineClass::Interactive)
        ]);
        let run = Scheduler::new().run(&all_slow, &jobs).unwrap();
        assert_eq!(run.evictions, 0);
        assert_eq!(run.jobs[0].device_ordinals, vec![0]);
    }

    #[test]
    fn trace_events_keep_per_track_monotonicity() {
        let pool = DevicePool::unlimited(2);
        let jobs = queued(vec![
            one_device_job("a", 1),
            one_device_job("b", 2),
            one_device_job("c", 3).with_devices(2),
            one_device_job("d", 4),
        ]);
        let run = Scheduler::new().run(&pool, &jobs).unwrap();
        let events = run.to_trace_events();
        assert!(!events.is_empty());
        let mut cursors: BTreeMap<(usize, Track), f64> = BTreeMap::new();
        for e in &events {
            let (start, end) = e.sim.expect("service traces are sim events");
            let cursor = cursors.entry((e.device, e.track)).or_insert(0.0);
            assert!(
                start + 1e-9 >= *cursor,
                "track ({}, {:?}) rewound: {} < {}",
                e.device,
                e.track,
                start,
                cursor
            );
            *cursor = end;
        }
    }
}
