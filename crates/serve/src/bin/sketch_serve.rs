//! `sketch_serve` — replay a job file through the multi-tenant service.
//!
//! ```text
//! sketch_serve --jobs examples/jobs/mixed_tenants.json --devices 4 \
//!     --out SERVE_report.json --trace serve_trace.json
//! ```
//!
//! Reads a [`JobFile`], submits every job through admission control and the
//! bounded fair queue, co-schedules the admitted jobs on a modelled
//! [`DevicePool`], and prints the per-tenant ledger.  `--out` writes the full
//! report JSON; `--trace` writes a Perfetto-compatible trace of the merged
//! service timeline.  `--smoke` is accepted for CI parity (the run is already
//! deterministic and cheap; the flag only shrinks the pool default).

use sketch_gpu_sim::DevicePool;
use sketch_obs::{chrome_trace_with_metrics, write_json, MetricsRegistry};
use sketch_serve::{JobFile, ServeEngine, ServiceReport};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    jobs: PathBuf,
    devices: usize,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut jobs = None;
    let mut devices = None;
    let mut out = None;
    let mut trace = None;
    let mut smoke = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--jobs" => jobs = Some(PathBuf::from(value("--jobs")?)),
            "--devices" => {
                devices = Some(
                    value("--devices")?
                        .parse::<usize>()
                        .map_err(|_| "--devices needs a positive integer".to_string())
                        .and_then(|n| {
                            if n == 0 {
                                Err("--devices needs a positive integer".into())
                            } else {
                                Ok(n)
                            }
                        })?,
                );
            }
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--smoke" => smoke = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let jobs = jobs.ok_or_else(|| "--jobs FILE is required".to_string())?;
    Ok(Args {
        jobs,
        devices: devices.unwrap_or(if smoke { 2 } else { 4 }),
        out,
        trace,
        smoke,
    })
}

fn print_ledger(report: &ServiceReport) {
    println!(
        "{:<12} {:>8} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "tenant", "run", "rejected", "compute_s", "comm_bytes", "wait_p50_s", "wait_p95_s"
    );
    for (tenant, ledger) in &report.tenants {
        println!(
            "{:<12} {:>8} {:>9} {:>12.6} {:>12} {:>12.6} {:>12.6}",
            tenant,
            ledger.jobs_run,
            ledger.jobs_rejected,
            ledger.compute_seconds,
            ledger.comm_bytes,
            ledger.queue_wait_p50(),
            ledger.queue_wait_p95(),
        );
    }
    println!(
        "service: {} devices, makespan {:.6} s, serialized timeline {:.6} s",
        report.service.devices,
        report.service.makespan(),
        report.service.timeline.serial_seconds()
    );
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.jobs)
        .map_err(|e| format!("cannot read {}: {e}", args.jobs.display()))?;
    let file = JobFile::from_json(&text).map_err(|e| e.to_string())?;
    let pool = DevicePool::unlimited(args.devices);
    let mut engine = ServeEngine::new(&pool, file.admission(), file.queue_capacity);
    for job in file.jobs {
        // Rejections are part of the service record, not a driver failure.
        if let Err(err) = engine.submit(job) {
            eprintln!("rejected: {err}");
        }
    }
    let report = engine.run().map_err(|e| e.to_string())?;
    print_ledger(&report);
    let metrics = MetricsRegistry::new();
    report.record_metrics(&metrics);
    if let Some(out) = &args.out {
        write_json(out, &report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("report: {}", out.display());
    }
    if let Some(trace) = &args.trace {
        let events = report.service.to_trace_events();
        let doc = chrome_trace_with_metrics(&events, Some(&metrics));
        write_json(trace, &doc).map_err(|e| format!("cannot write {}: {e}", trace.display()))?;
        println!("trace: {}", trace.display());
    }
    if args.smoke && report.jobs_run() == 0 {
        return Err("smoke run executed zero jobs".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("sketch_serve: {msg}");
            eprintln!(
                "usage: sketch_serve --jobs FILE [--devices N] [--out FILE] [--trace FILE] [--smoke]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sketch_serve: {msg}");
            ExitCode::FAILURE
        }
    }
}
