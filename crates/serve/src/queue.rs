//! A bounded job queue with per-tenant fairness.
//!
//! The queue holds at most `capacity` jobs in total (a full queue rejects
//! with a typed [`RejectReason::QueueFull`]).  Draining is round-robin across
//! tenants in first-submission order — no tenant can starve another by
//! flooding the queue — and within a tenant jobs pop by `(deadline class,
//! priority desc, submission order)`, so an interactive job overtakes batch
//! work from the same tenant but never jumps another tenant's turn.
//!
//! Everything is deterministic: identical submission sequences drain in
//! identical order on every host and thread count.

use crate::error::{RejectReason, ServeError};
use crate::job::JobSpec;

/// A job in the queue, stamped with its admission sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// The job.
    pub job: JobSpec,
    /// Global submission sequence number (the deterministic tiebreaker).
    pub seq: u64,
}

/// The bounded, tenant-fair job queue.
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    /// Per-tenant FIFO lanes, keyed by tenant in first-submission order.
    lanes: Vec<(String, Vec<QueuedJob>)>,
    /// Round-robin cursor over `lanes`.
    cursor: usize,
    next_seq: u64,
    len: usize,
}

impl JobQueue {
    /// An empty queue holding at most `capacity` jobs.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — a queue that can hold nothing cannot
    /// serve anybody.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            lanes: Vec::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued, across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Jobs currently queued for `tenant`.
    pub fn queued_for(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(0, |(_, lane)| lane.len())
    }

    /// Enqueue a job, or reject it with [`RejectReason::QueueFull`].
    pub fn push(&mut self, job: JobSpec) -> Result<u64, ServeError> {
        if self.len >= self.capacity {
            return Err(ServeError::Rejected {
                tenant: job.tenant.clone(),
                reason: RejectReason::QueueFull {
                    capacity: self.capacity,
                },
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.lanes.iter().position(|(t, _)| *t == job.tenant) {
            Some(idx) => idx,
            None => {
                self.lanes.push((job.tenant.clone(), Vec::new()));
                self.lanes.len() - 1
            }
        };
        self.lanes[idx].1.push(QueuedJob { job, seq });
        self.len += 1;
        Ok(seq)
    }

    /// Pop the next job: round-robin over tenants (first-submission order),
    /// then the tenant's most urgent job by `(deadline rank, priority desc,
    /// seq)`.
    pub fn pop(&mut self) -> Option<QueuedJob> {
        if self.len == 0 {
            return None;
        }
        let lanes = self.lanes.len();
        for step in 0..lanes {
            let idx = (self.cursor + step) % lanes;
            let lane = &mut self.lanes[idx].1;
            if lane.is_empty() {
                continue;
            }
            let best = lane
                .iter()
                .enumerate()
                .min_by_key(|(_, q)| {
                    (
                        q.job.deadline.rank(),
                        u8::MAX - q.job.priority, // higher priority first
                        q.seq,
                    )
                })
                .map(|(i, _)| i)
                .expect("lane is non-empty");
            let job = lane.remove(best);
            self.len -= 1;
            // Next pop starts at the lane after this one: round-robin.
            self.cursor = (idx + 1) % lanes;
            return Some(job);
        }
        None
    }

    /// Drain the whole queue in fair pop order.
    pub fn drain(&mut self) -> Vec<QueuedJob> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(job) = self.pop() {
            out.push(job);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DeadlineClass, OperandSpec};
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};

    fn job(tenant: &str) -> JobSpec {
        JobSpec::new(
            tenant,
            Pipeline::single(SketchSpec::countsketch(64, EmbeddingDim::Exact(32), 1)),
            OperandSpec::Dense {
                rows: 64,
                cols: 4,
                seed: 1,
            },
        )
    }

    #[test]
    fn round_robin_across_tenants_in_first_submission_order() {
        let mut q = JobQueue::new(16);
        // Tenant a floods the queue before b and c submit one job each.
        for _ in 0..4 {
            q.push(job("a")).unwrap();
        }
        q.push(job("b")).unwrap();
        q.push(job("c")).unwrap();
        let order: Vec<String> = q.drain().into_iter().map(|j| j.job.tenant).collect();
        assert_eq!(order, ["a", "b", "c", "a", "a", "a"]);
    }

    #[test]
    fn within_a_tenant_deadline_beats_priority_beats_seq() {
        let mut q = JobQueue::new(16);
        q.push(job("t").with_priority(9)) // standard, high priority
            .unwrap();
        q.push(
            job("t")
                .with_deadline(DeadlineClass::Batch)
                .with_priority(255),
        )
        .unwrap();
        q.push(job("t").with_deadline(DeadlineClass::Interactive))
            .unwrap();
        q.push(job("t").with_priority(9)) // standard, same priority, later seq
            .unwrap();
        let seqs: Vec<u64> = q.drain().into_iter().map(|j| j.seq).collect();
        // Interactive first, then the two standard-priority-9 in seq order,
        // batch last despite its 255 priority.
        assert_eq!(seqs, [2, 0, 3, 1]);
    }

    #[test]
    fn full_queue_rejects_with_a_typed_error() {
        let mut q = JobQueue::new(2);
        q.push(job("a")).unwrap();
        q.push(job("b")).unwrap();
        let err = q.push(job("c")).unwrap_err();
        match err {
            ServeError::Rejected { tenant, reason } => {
                assert_eq!(tenant, "c");
                assert_eq!(reason, RejectReason::QueueFull { capacity: 2 });
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Popping frees space again.
        assert!(q.pop().is_some());
        q.push(job("c")).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn queued_for_counts_per_tenant() {
        let mut q = JobQueue::new(8);
        q.push(job("a")).unwrap();
        q.push(job("a")).unwrap();
        q.push(job("b")).unwrap();
        assert_eq!(q.queued_for("a"), 2);
        assert_eq!(q.queued_for("b"), 1);
        assert_eq!(q.queued_for("missing"), 0);
        assert!(!q.is_empty());
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        JobQueue::new(0);
    }
}
