//! `sketch-serve`: a multi-tenant job engine that co-schedules sketch
//! pipelines on the shared [`DevicePool`](sketch_gpu_sim::DevicePool).
//!
//! The crate turns the library's single-pipeline executor into a *service*:
//!
//! 1. **Specify** — a [`JobSpec`] names a tenant, priority, deadline class,
//!    a [`sketch_core::Pipeline`] payload, and an [`OperandSpec`] describing
//!    the input to materialise.  Specs round-trip through JSON ([`JobFile`]).
//! 2. **Admit** — the [`AdmissionController`] checks the tenant's declarative
//!    budgets (in-flight jobs, modelled sketch bytes, modelled flops) and
//!    answers with a typed [`RejectReason`], never a panic.
//! 3. **Queue** — the bounded [`JobQueue`] is round-robin fair across tenants
//!    and deadline/priority aware within one.
//! 4. **Schedule** — the [`Scheduler`] packs jobs onto disjoint device
//!    subsets ([`DevicePool::subpool`](sketch_gpu_sim::DevicePool::subpool))
//!    and runs them through [`sketch_dist::pipelined_sketch`], merging the
//!    per-job timelines onto one modelled cluster clock.
//! 5. **Settle** — [`ServeEngine::run`] produces a [`ServiceReport`]: one
//!    [`TenantLedger`] per tenant plus the service-level
//!    [`ServiceRun`], exportable to [`sketch_obs::MetricsRegistry`] and a
//!    Perfetto-compatible trace.
//!
//! Tenant isolation is bit-exact: every stage seed is salted with an
//! FNV-1a-64 hash of the tenant id ([`tenant_salt`]), so a job's results are
//! identical whether it runs co-scheduled on a busy pool or alone on a fresh
//! one — pinned by tests across device counts, sketch kinds, and operand
//! layouts.
//!
//! ```
//! use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};
//! use sketch_gpu_sim::DevicePool;
//! use sketch_serve::{AdmissionController, JobSpec, OperandSpec, ServeEngine};
//!
//! let pool = DevicePool::unlimited(2);
//! let mut engine = ServeEngine::new(&pool, AdmissionController::new(), 16);
//! for (tenant, seed) in [("ads", 1), ("search", 2), ("ads", 3), ("search", 4)] {
//!     engine
//!         .submit(JobSpec::new(
//!             tenant,
//!             Pipeline::single(SketchSpec::countsketch(
//!                 1 << 10,
//!                 EmbeddingDim::Exact(128),
//!                 seed,
//!             )),
//!             OperandSpec::Dense { rows: 1 << 10, cols: 8, seed },
//!         ))
//!         .unwrap();
//! }
//! let report = engine.run().unwrap();
//! assert_eq!(report.jobs_run(), 4);
//! // Co-scheduling on two devices beats running the jobs back to back.
//! assert!(report.service.makespan() < report.service.timeline.serial_seconds());
//! ```

pub mod admission;
pub mod engine;
pub mod error;
pub mod file;
pub mod job;
pub mod queue;
pub mod scheduler;

pub use admission::{AdmissionController, TenantLimits};
pub use engine::{ServeEngine, ServiceReport, TenantLedger, QUEUE_WAIT_BOUNDS, REJECTION_BOUNDS};
pub use error::{RejectReason, ServeError};
pub use file::{JobFile, DEFAULT_QUEUE_CAPACITY};
pub use job::{tenant_salt, DeadlineClass, JobSpec, OperandData, OperandSpec};
pub use queue::{JobQueue, QueuedJob};
pub use scheduler::{AbandonedJob, ScheduledJob, Scheduler, ServiceRun};
