//! The job-file format the `sketch_serve` batch driver replays.
//!
//! A job file is one JSON object:
//!
//! ```json
//! {
//!   "queue_capacity": 256,
//!   "default_limits": { "max_in_flight": 8 },
//!   "tenant_limits": { "batch-lab": { "max_modelled_flops": 100000000 } },
//!   "jobs": [ { "tenant": "...", "pipeline": {...}, "operand": {...} } ]
//! }
//! ```
//!
//! Every section except `jobs` is optional; omitted limits mean "unlimited".
//! Parsing is strict about types (a typed [`ServeError::Spec`] names the bad
//! field) so a malformed file fails before any job runs.

use crate::admission::{AdmissionController, TenantLimits};
use crate::error::ServeError;
use crate::job::JobSpec;
use sketch_core::JsonValue;
use std::collections::BTreeMap;

/// Default queue bound when the file does not name one.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// A parsed job file: queue bound, admission policy, and the request stream.
#[derive(Debug, Clone)]
pub struct JobFile {
    /// Bound on the job queue.
    pub queue_capacity: usize,
    /// Default limits for tenants without an override.
    pub default_limits: TenantLimits,
    /// Per-tenant limit overrides.
    pub tenant_limits: BTreeMap<String, TenantLimits>,
    /// The request stream, in submission order.
    pub jobs: Vec<JobSpec>,
}

impl Default for JobFile {
    fn default() -> Self {
        Self {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            default_limits: TenantLimits::unlimited(),
            tenant_limits: BTreeMap::new(),
            jobs: Vec::new(),
        }
    }
}

impl JobFile {
    /// Build the [`AdmissionController`] this file declares.
    pub fn admission(&self) -> AdmissionController {
        let mut ctl = AdmissionController::new().with_default(self.default_limits);
        for (tenant, limits) in &self.tenant_limits {
            ctl = ctl.with_tenant(tenant.clone(), *limits);
        }
        ctl
    }

    /// Serialize to a [`JsonValue`].
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "queue_capacity".into(),
                JsonValue::UInt(self.queue_capacity as u64),
            ),
            ("default_limits".into(), self.default_limits.to_json_value()),
            (
                "tenant_limits".into(),
                JsonValue::Object(
                    self.tenant_limits
                        .iter()
                        .map(|(t, l)| (t.clone(), l.to_json_value()))
                        .collect(),
                ),
            ),
            (
                "jobs".into(),
                JsonValue::Array(self.jobs.iter().map(JobSpec::to_json_value).collect()),
            ),
        ])
    }

    /// Parse from a [`JsonValue`].
    pub fn from_json_value(value: &JsonValue) -> Result<Self, ServeError> {
        let mut file = JobFile::default();
        if let Some(cap) = value.get("queue_capacity") {
            let cap = cap
                .as_usize()
                .ok_or_else(|| ServeError::spec("\"queue_capacity\" must be an integer"))?;
            if cap == 0 {
                return Err(ServeError::spec("\"queue_capacity\" must be positive"));
            }
            file.queue_capacity = cap;
        }
        if let Some(limits) = value.get("default_limits") {
            file.default_limits = TenantLimits::from_json_value(limits)?;
        }
        if let Some(overrides) = value.get("tenant_limits") {
            match overrides {
                JsonValue::Object(fields) => {
                    for (tenant, limits) in fields {
                        file.tenant_limits
                            .insert(tenant.clone(), TenantLimits::from_json_value(limits)?);
                    }
                }
                _ => return Err(ServeError::spec("\"tenant_limits\" must be an object")),
            }
        }
        let jobs = value
            .get("jobs")
            .ok_or_else(|| ServeError::spec("job file needs a \"jobs\" array"))?;
        match jobs {
            JsonValue::Array(items) => {
                for item in items {
                    file.jobs.push(JobSpec::from_json_value(item)?);
                }
            }
            _ => return Err(ServeError::spec("\"jobs\" must be an array")),
        }
        Ok(file)
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Parse from a JSON string.
    pub fn from_json(text: &str) -> Result<Self, ServeError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::OperandSpec;
    use sketch_core::{EmbeddingDim, Pipeline, SketchSpec};

    fn sample() -> JobFile {
        let mut file = JobFile {
            queue_capacity: 8,
            ..JobFile::default()
        };
        file.default_limits = TenantLimits::unlimited().with_max_in_flight(4);
        file.tenant_limits.insert(
            "batch-lab".into(),
            TenantLimits::unlimited().with_max_modelled_flops(1 << 30),
        );
        file.jobs.push(JobSpec::new(
            "ads",
            Pipeline::single(SketchSpec::countsketch(256, EmbeddingDim::Exact(64), 3)),
            OperandSpec::Dense {
                rows: 256,
                cols: 8,
                seed: 11,
            },
        ));
        file
    }

    #[test]
    fn round_trips_through_json() {
        let file = sample();
        let parsed = JobFile::from_json(&file.to_json()).unwrap();
        assert_eq!(parsed.queue_capacity, 8);
        assert_eq!(parsed.default_limits, file.default_limits);
        assert_eq!(parsed.tenant_limits, file.tenant_limits);
        assert_eq!(parsed.jobs, file.jobs);
    }

    #[test]
    fn defaults_fill_in_when_sections_are_omitted() {
        let parsed = JobFile::from_json(r#"{"jobs": []}"#).unwrap();
        assert_eq!(parsed.queue_capacity, DEFAULT_QUEUE_CAPACITY);
        assert_eq!(parsed.default_limits, TenantLimits::unlimited());
        assert!(parsed.tenant_limits.is_empty());
        assert!(parsed.jobs.is_empty());
    }

    #[test]
    fn malformed_files_fail_with_named_fields() {
        for (text, needle) in [
            (r#"{}"#, "jobs"),
            (r#"{"jobs": 3}"#, "array"),
            (r#"{"jobs": [], "queue_capacity": 0}"#, "positive"),
            (r#"{"jobs": [], "queue_capacity": "big"}"#, "integer"),
            (r#"{"jobs": [], "tenant_limits": []}"#, "object"),
        ] {
            let err = JobFile::from_json(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text} should fail mentioning {needle}, got: {err}"
            );
        }
    }

    #[test]
    fn admission_builds_from_the_declared_policy() {
        let ctl = sample().admission();
        assert_eq!(ctl.limits_for("anyone").max_in_flight, 4);
        assert_eq!(ctl.limits_for("batch-lab").max_modelled_flops, 1 << 30);
        assert_eq!(ctl.limits_for("batch-lab").max_in_flight, usize::MAX);
    }
}
