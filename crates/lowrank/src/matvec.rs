//! The [`MatVecLike`] abstraction: one operand interface for dense and sparse inputs.
//!
//! The entire low-rank pipeline only ever touches the input matrix through two
//! products — `A·B` (sketching the range) and `Aᵀ·B` (projecting back / power
//! iteration) — and both are provided by the workspace-wide
//! [`sketch_core::Operand`] view.  `MatVecLike` is therefore a thin adapter: a type
//! says how to view itself as an `Operand` and inherits the shared dense/CSR
//! product implementations (dense routes through `sketch-la` GEMM, CSR through
//! `sketch-sparse` SpMM), instead of each operand re-implementing the split.
//!
//! [`SparseOperand`] remains the one override: it caches the CSR transpose so the
//! repeated `Aᵀ·B` products of power iteration pay the counting sort once.

use crate::error::LowRankError;
use sketch_core::Operand;
use sketch_gpu_sim::Device;
use sketch_la::Matrix;
use sketch_sparse::{spmm, CsrMatrix};
use std::cell::OnceCell;

/// An operand the low-rank routines can multiply by a thin dense matrix from the
/// right, both as itself and transposed.
///
/// Implementors only provide [`as_operand`](Self::as_operand); the products come
/// from the shared [`Operand`] implementation (override them only to add caching,
/// as [`SparseOperand`] does for the transpose).
pub trait MatVecLike {
    /// View this operand as the shared dense/CSR [`Operand`].
    fn as_operand(&self) -> Operand<'_>;

    /// Number of rows of the operand.
    fn nrows(&self) -> usize {
        self.as_operand().nrows()
    }

    /// Number of columns of the operand.
    fn ncols(&self) -> usize {
        self.as_operand().ncols()
    }

    /// Compute `A · B` with `B` dense `ncols x p`; the result is `nrows x p`.
    fn mul_right(&self, device: &Device, b: &Matrix) -> Result<Matrix, LowRankError> {
        self.as_operand().mul_right(device, b)
    }

    /// Compute `Aᵀ · B` with `B` dense `nrows x p`; the result is `ncols x p`.
    fn mul_transpose_right(&self, device: &Device, b: &Matrix) -> Result<Matrix, LowRankError> {
        self.as_operand().mul_transpose_right(device, b)
    }
}

impl MatVecLike for Matrix {
    fn as_operand(&self) -> Operand<'_> {
        Operand::Dense(self)
    }
}

/// Plain CSR operands recompute the transpose on every `Aᵀ·B` — fine for the
/// single `AᵀQ` step of the plain RSVD pipeline; power-iteration users should wrap
/// the matrix in [`SparseOperand`], which caches the transpose across calls.
impl MatVecLike for CsrMatrix {
    fn as_operand(&self) -> Operand<'_> {
        Operand::Csr(self)
    }
}

/// A [`CsrMatrix`] operand that lazily computes and caches its transpose, so the
/// repeated `Aᵀ·B` products of power iteration pay the CSR→CSR counting sort once
/// instead of once per iteration.
#[derive(Debug)]
pub struct SparseOperand {
    csr: CsrMatrix,
    transposed: OnceCell<CsrMatrix>,
}

impl SparseOperand {
    /// Wrap a CSR matrix; the transpose is computed on first use.
    pub fn new(csr: CsrMatrix) -> Self {
        Self {
            csr,
            transposed: OnceCell::new(),
        }
    }

    /// The wrapped matrix.
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    fn transposed(&self) -> &CsrMatrix {
        self.transposed.get_or_init(|| self.csr.transpose())
    }
}

impl From<CsrMatrix> for SparseOperand {
    fn from(csr: CsrMatrix) -> Self {
        Self::new(csr)
    }
}

impl MatVecLike for SparseOperand {
    fn as_operand(&self) -> Operand<'_> {
        Operand::Csr(&self.csr)
    }

    fn mul_transpose_right(&self, device: &Device, b: &Matrix) -> Result<Matrix, LowRankError> {
        if b.nrows() != self.csr.nrows() {
            return Err(crate::error::dim_err(
                "spmm_t",
                self.csr.nrows(),
                b.nrows(),
                format!("B dense {}x{}", b.nrows(), b.ncols()),
            ));
        }
        Ok(spmm(device, self.transposed(), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::Layout;
    use sketch_sparse::CooMatrix;

    fn device() -> Device {
        Device::unlimited()
    }

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 2, -1.0);
        coo.push(3, 1, 0.5);
        coo.push(3, 2, 4.0);
        CsrMatrix::from_coo(&coo)
    }

    fn dense_of(csr: &CsrMatrix) -> Matrix {
        let rows = csr.to_dense();
        Matrix::from_fn(csr.nrows(), csr.ncols(), Layout::ColMajor, |i, j| {
            rows[i][j]
        })
    }

    #[test]
    fn sparse_products_match_dense_products() {
        let d = device();
        let s = sample_csr();
        let a = dense_of(&s);
        let b = Matrix::random_gaussian(3, 2, Layout::ColMajor, 1, 0);
        let bt = Matrix::random_gaussian(4, 2, Layout::ColMajor, 1, 1);

        let sparse = MatVecLike::mul_right(&s, &d, &b).unwrap();
        let dense = MatVecLike::mul_right(&a, &d, &b).unwrap();
        assert!(sparse.max_abs_diff(&dense).unwrap() < 1e-14);

        let sparse_t = s.mul_transpose_right(&d, &bt).unwrap();
        let dense_t = a.mul_transpose_right(&d, &bt).unwrap();
        assert!(sparse_t.max_abs_diff(&dense_t).unwrap() < 1e-14);
    }

    #[test]
    fn dimension_mismatches_are_errors_not_panics() {
        let d = device();
        let s = sample_csr();
        let wrong = Matrix::zeros(5, 2);
        assert!(MatVecLike::mul_right(&s, &d, &wrong).is_err());
        assert!(s.mul_transpose_right(&d, &wrong).is_err());
        let a = Matrix::zeros(4, 3);
        assert!(MatVecLike::mul_right(&a, &d, &wrong).is_err());
    }

    #[test]
    fn sparse_operand_matches_plain_csr_and_caches_the_transpose() {
        let d = device();
        let s = sample_csr();
        let wrapped = SparseOperand::from(s.clone());
        let b = Matrix::random_gaussian(3, 2, Layout::ColMajor, 2, 0);
        let bt = Matrix::random_gaussian(4, 2, Layout::ColMajor, 2, 1);

        let direct = MatVecLike::mul_right(&s, &d, &b).unwrap();
        let via_wrap = wrapped.mul_right(&d, &b).unwrap();
        assert_eq!(direct.as_slice(), via_wrap.as_slice());

        let direct_t = s.mul_transpose_right(&d, &bt).unwrap();
        let via_wrap_t = wrapped.mul_transpose_right(&d, &bt).unwrap();
        assert_eq!(direct_t.as_slice(), via_wrap_t.as_slice());

        // Second transposed product reuses the cached transpose (same pointer).
        let first: *const CsrMatrix = wrapped.transposed();
        let _ = wrapped.mul_transpose_right(&d, &bt).unwrap();
        let second: *const CsrMatrix = wrapped.transposed();
        assert_eq!(first, second);
        assert_eq!(wrapped.csr(), &s);
        assert!(wrapped
            .mul_transpose_right(&d, &Matrix::zeros(5, 1))
            .is_err());
    }

    #[test]
    fn trait_reports_dimensions() {
        let s = sample_csr();
        assert_eq!(MatVecLike::nrows(&s), 4);
        assert_eq!(MatVecLike::ncols(&s), 3);
        let a = Matrix::zeros(7, 2);
        assert_eq!(MatVecLike::nrows(&a), 7);
        assert_eq!(MatVecLike::ncols(&a), 2);
        assert!(matches!(a.as_operand(), Operand::Dense(_)));
        assert!(matches!(s.as_operand(), Operand::Csr(_)));
    }
}
