//! Randomized SVD (HMT Algorithm 5.1) and the deterministic truncated-QR baseline.
//!
//! Both factorisations funnel into the same small dense SVD: the rangefinder (or the
//! economy QR for the deterministic path) compresses `A` to a thin matrix, and
//! `sketch-la::svd::jacobi_svd` finishes the job.  For `B = AᵀQ ∈ R^{n x ℓ}` with
//! `B = U_B Σ V_Bᵀ` we have `QᵀA = Bᵀ = V_B Σ U_Bᵀ`, hence `A ≈ (Q V_B) Σ U_Bᵀ`.

use crate::error::{dim_err, LowRankError};
use crate::matvec::MatVecLike;
use crate::rangefinder::{range_finder_on, LowRankParams};
use sketch_gpu_sim::{Device, Phase, Profiler};
use sketch_la::qr::economy_qr;
use sketch_la::{blas3, jacobi_svd, Layout, Matrix, Op};

/// A truncated singular value decomposition `A ≈ U Σ Vᵀ` of rank (at most) `k`.
#[derive(Debug, Clone)]
pub struct SvdResult {
    /// Left singular vectors, `m x k` with orthonormal columns.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors transposed, `k x n`.
    pub vt: Matrix,
}

impl SvdResult {
    /// The truncation rank `k`.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Materialise the rank-`k` approximation `U Σ Vᵀ`.
    pub fn reconstruct(&self, device: &Device) -> Result<Matrix, LowRankError> {
        let mut us = self.u.clone();
        for (j, &sj) in self.s.iter().enumerate() {
            for v in us
                .col_mut(j)
                .expect("SvdResult U is always column-major")
                .iter_mut()
            {
                *v *= sj;
            }
        }
        Ok(blas3::gemm(device, 1.0, &us, &self.vt, 0.0, None)?)
    }
}

/// Given an orthonormal range basis `Q`, compute the truncated SVD factors of
/// `Q Qᵀ A` (the shared tail of `rsvd` and the streaming path).
pub(crate) fn svd_from_range<M: MatVecLike + ?Sized>(
    device: &Device,
    a: &M,
    q: &Matrix,
    k: usize,
) -> Result<SvdResult, LowRankError> {
    if q.nrows() != a.nrows() {
        return Err(dim_err(
            "svd_from_range",
            a.nrows(),
            q.nrows(),
            format!("Q dense {}x{}", q.nrows(), q.ncols()),
        ));
    }
    let b = a.mul_transpose_right(device, q)?; // n x l, B = AᵀQ
    let svd = jacobi_svd(device, &b)?; // B = U_B Σ V_Bᵀ
    finish_truncation(device, q, &svd.vt, &svd.s, &svd.u, k, a.ncols())
}

/// Assemble `U = basis · rotᵀ` (truncated to `k` columns), `s[..k]`, and
/// `Vᵀ = right_colsᵀ[..k]` — the common final step of every SVD route in the crate.
fn finish_truncation(
    device: &Device,
    basis: &Matrix,
    rot_t: &Matrix,
    s: &[f64],
    right_cols: &Matrix,
    k: usize,
    n: usize,
) -> Result<SvdResult, LowRankError> {
    let u_full = blas3::gemm_op(device, 1.0, Op::NoTrans, basis, Op::Trans, rot_t, 0.0, None)?;
    let k = k.min(s.len());
    let u = u_full.submatrix(u_full.nrows(), k)?;
    let s = s[..k].to_vec();
    let vt = Matrix::from_fn(k, n, Layout::ColMajor, |i, j| right_cols.get(j, i));
    Ok(SvdResult { u, s, vt })
}

/// Randomized truncated SVD: rangefinder + small dense SVD.
///
/// Works for dense [`Matrix`] and sparse `CsrMatrix` operands alike (anything
/// implementing [`MatVecLike`]).  With the same [`LowRankParams`] (seed, stream,
/// sketch, dimensions) the result is bit-for-bit reproducible.
pub fn rsvd<M: MatVecLike + ?Sized>(
    device: &Device,
    a: &M,
    params: &LowRankParams,
) -> Result<SvdResult, LowRankError> {
    // The phase spans feed the device's attached recorder (if any); the
    // breakdown itself is discarded — rsvd reports factors, not timings.
    let mut prof = Profiler::new(device);
    let q = prof.phase(Phase::Other("rangefinder"), || {
        range_finder_on(device, a, params)
    })?;
    let out = prof.phase(Phase::Other("SVD from range"), || {
        svd_from_range(device, a, &q, params.k)
    })?;
    let _ = prof.finish();
    Ok(out)
}

/// Deterministic truncated SVD via economy QR: `A = Q R`, small Jacobi SVD of `R`,
/// truncate to rank `k`.  Requires `m >= n`.
///
/// This is the dense baseline the `fig_lowrank` bench compares the randomized path
/// against: same answer as a full SVD truncated to `k`, but `O(mn² + n³)` work and a
/// full pass over `A` per Householder panel instead of the sketch's single pass.
pub fn deterministic_svd(device: &Device, a: &Matrix, k: usize) -> Result<SvdResult, LowRankError> {
    let (q, r) = economy_qr(device, a)?;
    let svd = jacobi_svd(device, &r)?; // R = U_R Σ Vᵀ ⇒ A = (Q U_R) Σ Vᵀ
    let u_full = blas3::gemm(device, 1.0, &q, &svd.u, 0.0, None)?;
    let k = k.min(svd.s.len());
    let u = u_full.submatrix(u_full.nrows(), k)?;
    let s = svd.s[..k].to_vec();
    let vt = svd.vt.submatrix(k, a.ncols())?;
    Ok(SvdResult { u, s, vt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rangefinder::RangeSketch;
    use sketch_la::cond::{geometric_singular_values, matrix_with_singular_values};
    use sketch_la::norms::frobenius_rel_diff;
    use sketch_sparse::{CooMatrix, CsrMatrix};

    fn device() -> Device {
        Device::unlimited()
    }

    fn rank_k_matrix(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
        sketch_la::cond::rank_k_matrix(&device(), m, n, k, seed).unwrap()
    }

    fn frob_rel_err(a: &Matrix, approx: &Matrix) -> f64 {
        frobenius_rel_diff(&device(), a, approx).unwrap()
    }

    #[test]
    fn rsvd_recovers_exact_rank_k_matrices() {
        let d = device();
        let a = rank_k_matrix(60, 20, 5, 1);
        for sketch in [
            RangeSketch::Gaussian,
            RangeSketch::CountSketch,
            RangeSketch::Srht,
        ] {
            let params = LowRankParams::new(5).with_sketch(sketch).with_seed(3, 0);
            let svd = rsvd(&d, &a, &params).unwrap();
            assert_eq!(svd.rank(), 5);
            let back = svd.reconstruct(&d).unwrap();
            let err = frob_rel_err(&a, &back);
            assert!(err < 1e-10, "{}: relative error {err}", sketch.name());
        }
    }

    #[test]
    fn rsvd_singular_values_match_the_spectrum() {
        let d = device();
        let sigma = geometric_singular_values(16, 1e6);
        let a = matrix_with_singular_values(&d, 64, 16, &sigma, 2).unwrap();
        let params = LowRankParams::new(6).with_power_iters(2);
        let svd = rsvd(&d, &a, &params).unwrap();
        for (computed, expected) in svd.s.iter().zip(sigma.iter()) {
            assert!(
                (computed - expected).abs() < 1e-6 * expected,
                "{computed} vs {expected}"
            );
        }
    }

    #[test]
    fn rsvd_factors_are_orthonormal() {
        let d = device();
        let a = Matrix::random_gaussian(40, 15, Layout::ColMajor, 4, 0);
        let svd = rsvd(&d, &a, &LowRankParams::new(6)).unwrap();
        let utu =
            blas3::gemm_op(&d, 1.0, Op::Trans, &svd.u, Op::NoTrans, &svd.u, 0.0, None).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-10);
        let vvt =
            blas3::gemm_op(&d, 1.0, Op::NoTrans, &svd.vt, Op::Trans, &svd.vt, 0.0, None).unwrap();
        assert!(vvt.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-10);
    }

    #[test]
    fn sparse_input_matches_its_dense_twin() {
        let d = device();
        // A sparse rank-deficient-ish band matrix.
        let mut coo = CooMatrix::new(50, 18);
        for i in 0..50 {
            coo.push(i, i % 18, 1.0 + (i as f64) * 0.1);
            coo.push(i, (i + 3) % 18, -0.5);
        }
        let csr = CsrMatrix::from_coo(&coo);
        let rows = csr.to_dense();
        let dense = Matrix::from_fn(50, 18, Layout::ColMajor, |i, j| rows[i][j]);
        let params = LowRankParams::new(8).with_seed(5, 1);
        let s_sparse = rsvd(&d, &csr, &params).unwrap();
        let s_dense = rsvd(&d, &dense, &params).unwrap();
        for (a, b) in s_sparse.s.iter().zip(s_dense.s.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_svd_is_the_truncated_exact_svd() {
        let d = device();
        let sigma = geometric_singular_values(10, 1e4);
        let a = matrix_with_singular_values(&d, 30, 10, &sigma, 7).unwrap();
        let k = 4;
        let det = deterministic_svd(&d, &a, k).unwrap();
        assert_eq!(det.rank(), k);
        for (computed, expected) in det.s.iter().zip(sigma.iter()) {
            assert!((computed - expected).abs() < 1e-8 * expected.max(1.0));
        }
        // The rank-k truncation error is exactly the tail of the spectrum.
        let back = det.reconstruct(&d).unwrap();
        let err = frob_rel_err(&a, &back);
        let tail: f64 = sigma[k..].iter().map(|s| s * s).sum::<f64>().sqrt();
        let total: f64 = sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - tail / total).abs() < 1e-8, "err {err}");
    }

    #[test]
    fn rank_requests_beyond_l_are_clamped() {
        let d = device();
        let a = rank_k_matrix(20, 6, 2, 9);
        // k = 6 == n, oversample clamps l to 6; result still has rank 6 entries.
        let svd = rsvd(&d, &a, &LowRankParams::new(6)).unwrap();
        assert_eq!(svd.rank(), 6);
        assert!(svd.s[2] < 1e-10, "rank-2 input has tiny trailing values");
    }
}
