//! Nyström approximation for symmetric positive semidefinite matrices.
//!
//! For PSD `A`, the single-sketch Nyström approximation
//! `A ≈ (AΩ) (ΩᵀAΩ)⁻¹ (AΩ)ᵀ` is cheaper and more accurate than a general RSVD of the
//! same sketch size.  This module implements the numerically stable shifted variant
//! (Tropp–Yurtsever–Udell–Cevher): add `ν·I` before factoring so the small core
//! `ΩᵀY_ν` stays positive definite in floating point, Cholesky it with
//! `sketch-la::chol::potrf_upper`, and recover the eigenvalues from the singular
//! values of `B = Y_ν C⁻¹` (`λ_i = max(σ_i² − ν, 0)`).

use crate::error::{dim_err, LowRankError};
use crate::matvec::MatVecLike;
use crate::rangefinder::LowRankParams;
use sketch_gpu_sim::{Device, Phase, Profiler};
use sketch_la::blas2::Triangle;
use sketch_la::chol::potrf_upper;
use sketch_la::norms::frobenius;
use sketch_la::{blas3, jacobi_svd, Layout, Matrix, Op};

/// A truncated eigendecomposition `A ≈ U diag(λ) Uᵀ` of a PSD matrix.
#[derive(Debug, Clone)]
pub struct NystromResult {
    /// Eigenvectors, `n x k` with orthonormal columns.
    pub u: Matrix,
    /// Eigenvalue estimates, descending and clamped to `>= 0`.
    pub eigs: Vec<f64>,
}

impl NystromResult {
    /// The truncation rank `k`.
    pub fn rank(&self) -> usize {
        self.eigs.len()
    }

    /// Materialise the rank-`k` PSD approximation `U diag(λ) Uᵀ`.
    pub fn reconstruct(&self, device: &Device) -> Result<Matrix, LowRankError> {
        let mut ul = self.u.clone();
        for (j, &lj) in self.eigs.iter().enumerate() {
            for v in ul
                .col_mut(j)
                .expect("NystromResult U is always column-major")
                .iter_mut()
            {
                *v *= lj;
            }
        }
        Ok(blas3::gemm_op(
            device,
            1.0,
            Op::NoTrans,
            &ul,
            Op::Trans,
            &self.u,
            0.0,
            None,
        )?)
    }
}

/// Rank-`k` Nyström approximation of a symmetric PSD operand.
///
/// The operand must be square; symmetry and positive semidefiniteness are the
/// caller's contract (a decisively indefinite input surfaces as
/// [`LowRankError::La`] with a `NotPositiveDefinite` payload from the Cholesky of
/// the shifted core matrix).  `params.power_iters` is ignored: the single-sketch
/// Nyström scheme touches `A` exactly once by construction (use [`crate::rsvd()`]
/// with power iteration when the PSD spectrum decays too slowly for one pass).
pub fn nystrom<M: MatVecLike + ?Sized>(
    device: &Device,
    a: &M,
    params: &LowRankParams,
) -> Result<NystromResult, LowRankError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(dim_err(
            "nystrom",
            n,
            a.ncols(),
            format!("PSD operand must be square, got {}x{}", n, a.ncols()),
        ));
    }
    let l = params.sketch_dim(n, n)?;
    // Phase spans feed the device's attached recorder (if any); the breakdown
    // itself is discarded — nystrom reports factors, not timings.
    let mut prof = Profiler::new(device);
    let omega = prof.phase(Phase::SketchGen, || {
        params
            .sketch
            .test_matrix(device, n, l, params.seed, params.stream)
    })?;
    let y = prof.phase(Phase::MatrixSketch, || a.mul_right(device, &omega))?;

    // Shift by ν ~ √n·u·‖Y‖_F so the core factorisation survives roundoff; the shift
    // is subtracted from the eigenvalues at the end.
    let nu = (n as f64).sqrt() * f64::EPSILON * frobenius(device, &y).max(f64::MIN_POSITIVE);
    let y_nu = Matrix::from_fn(n, l, Layout::ColMajor, |i, j| {
        y.get(i, j) + nu * omega.get(i, j)
    });

    // Core matrix Ωᵀ Y_ν, symmetrised before Cholesky.
    let g = blas3::gemm_op(
        device,
        1.0,
        Op::Trans,
        &omega,
        Op::NoTrans,
        &y_nu,
        0.0,
        None,
    )?;
    let core = Matrix::from_fn(l, l, Layout::ColMajor, |i, j| {
        0.5 * (g.get(i, j) + g.get(j, i))
    });
    let c = prof.phase(Phase::Potrf, || potrf_upper(device, &core))?;

    // B = Y_ν C⁻¹; then B = U Σ Vᵀ gives eigenvectors U and eigenvalues σ² − ν.
    let b = prof.phase(Phase::Trsm, || {
        blas3::trsm_right(device, Triangle::Upper, Op::NoTrans, &c, &y_nu)
    })?;
    let svd = prof.phase(Phase::Other("small SVD"), || jacobi_svd(device, &b))?;
    let _ = prof.finish();
    let k = params.k.min(svd.s.len());
    let u = svd.u.submatrix(n, k)?;
    let eigs = svd.s[..k].iter().map(|s| (s * s - nu).max(0.0)).collect();
    Ok(NystromResult { u, eigs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsvd::rsvd;
    use sketch_la::cond::{geometric_singular_values, matrix_with_singular_values};

    fn device() -> Device {
        Device::unlimited()
    }

    /// A PSD Gram matrix whose eigenvalues are the squared singular values of the
    /// generating factor.
    fn gram_with_spectrum(n: usize, sigma: &[f64], seed: u64) -> Matrix {
        let d = device();
        let a = matrix_with_singular_values(&d, 2 * n, n, sigma, seed).unwrap();
        blas3::gram_gemm(&d, &a).unwrap()
    }

    #[test]
    fn nystrom_recovers_the_leading_eigenvalues() {
        let d = device();
        let sigma = geometric_singular_values(14, 1e3);
        let g = gram_with_spectrum(14, &sigma, 3);
        let res = nystrom(&d, &g, &LowRankParams::new(5).with_power_iters(0)).unwrap();
        assert_eq!(res.rank(), 5);
        for (computed, s) in res.eigs.iter().zip(sigma.iter()) {
            let expected = s * s;
            // Without power iteration the spectral tail perturbs each estimate at
            // (a small fraction of) the λ_{k+1} level, so the bound has both a
            // relative and a tail-sized absolute component.
            let tail = sigma[5] * sigma[5];
            assert!(
                (computed - expected).abs() < 1e-3 * expected + 1e-2 * tail,
                "{computed} vs {expected}"
            );
        }
        for w in res.eigs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let d = device();
        let sigma = geometric_singular_values(10, 1e2);
        let g = gram_with_spectrum(10, &sigma, 5);
        let res = nystrom(&d, &g, &LowRankParams::new(4)).unwrap();
        let utu =
            blas3::gemm_op(&d, 1.0, Op::Trans, &res.u, Op::NoTrans, &res.u, 0.0, None).unwrap();
        assert!(utu.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-9);
    }

    #[test]
    fn exact_low_rank_psd_matrix_is_reconstructed() {
        let d = device();
        let mut sigma = vec![0.0; 12];
        sigma[0] = 2.0;
        sigma[1] = 1.0;
        sigma[2] = 0.5;
        let g = gram_with_spectrum(12, &sigma, 7);
        let res = nystrom(&d, &g, &LowRankParams::new(3).with_seed(11, 0)).unwrap();
        let back = res.reconstruct(&d).unwrap();
        assert!(back.max_abs_diff(&g).unwrap() < 1e-9);
    }

    #[test]
    fn nystrom_is_competitive_with_rsvd_on_psd_input() {
        let d = device();
        let sigma = geometric_singular_values(16, 1e4);
        let g = gram_with_spectrum(16, &sigma, 9);
        let params = LowRankParams::new(6).with_seed(2, 0);
        let nys = nystrom(&d, &g, &params).unwrap();
        let svd = rsvd(&d, &g, &params).unwrap();
        let nys_back = nys.reconstruct(&d).unwrap();
        let svd_back = svd.reconstruct(&d).unwrap();
        let nys_err = nys_back.max_abs_diff(&g).unwrap();
        let svd_err = svd_back.max_abs_diff(&g).unwrap();
        // The PSD-specialised path should be in the same accuracy class as RSVD.
        assert!(
            nys_err <= 10.0 * svd_err + 1e-10,
            "nystrom {nys_err} vs rsvd {svd_err}"
        );
    }

    #[test]
    fn non_square_operand_is_rejected() {
        let d = device();
        let a = Matrix::zeros(4, 5);
        assert!(matches!(
            nystrom(&d, &a, &LowRankParams::new(2)),
            Err(LowRankError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn decisively_indefinite_input_surfaces_a_cholesky_error() {
        let d = device();
        // -I is symmetric but negative definite.
        let neg = Matrix::from_fn(
            8,
            8,
            Layout::ColMajor,
            |i, j| {
                if i == j {
                    -1.0
                } else {
                    0.0
                }
            },
        );
        let err = nystrom(&d, &neg, &LowRankParams::new(2)).unwrap_err();
        assert!(matches!(err, LowRankError::La(_)));
    }
}
