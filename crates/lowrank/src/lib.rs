//! # sketch-lowrank
//!
//! Randomized low-rank approximation — the second workload built on the workspace's
//! sketching substrate, after the least squares solvers of `sketch-lsq`.  The crate
//! follows the Halko–Martinsson–Tropp (HMT) blueprint:
//!
//! * [`range_finder`] — draw a test matrix `Ω ∈ R^{n x ℓ}` ([`RangeSketch`]:
//!   Gaussian, CountSketch, or SRHT, built from the `sketch-core` operators), form
//!   `Y = AΩ`, orthonormalise with Householder QR, optionally stabilised power
//!   iteration.  Runs on the unified execution engine: it takes a
//!   [`sketch_gpu_sim::DevicePool`] — serial is a pool of one, and on 2+ devices
//!   the CountSketch/SRHT families shard `Y = (S Aᵀ)ᵀ` through
//!   [`sketch_dist::pipelined_sketch`],
//! * [`rsvd()`] — rangefinder plus a small dense SVD (`sketch-la::svd::jacobi_svd`)
//!   giving the truncated factorisation `A ≈ U Σ Vᵀ`,
//! * [`StreamingSvd`] / [`streaming_svd`] — a *single-pass* variant that consumes `A`
//!   row-block-by-row-block (the [`sketch_dist::BlockRowMatrix`] access pattern),
//!   maintaining left/right sketches so `A` is read exactly once,
//! * [`nystrom()`] — the PSD-specialised Nyström approximation via
//!   `sketch-la::chol`,
//! * [`estimate_range_error`] — a posterior Gaussian-probe estimate of
//!   `‖A − QQᵀA‖₂` so callers can adaptively grow `k`.
//!
//! Inputs are anything implementing [`MatVecLike`], which is a thin adapter over the
//! workspace-wide [`sketch_core::Operand`] view: dense [`sketch_la::Matrix`] and
//! sparse [`sketch_sparse::CsrMatrix`] share one dense/CSR product implementation
//! (the sparse path routes through `sketch-sparse::ops::spmm`).  All randomness
//! comes from explicit Philox seeds/streams, so equal parameters give bit-for-bit
//! equal factorisations.
//!
//! ## Error bound
//!
//! For the Gaussian rangefinder with target rank `k` and oversampling `p ≥ 2`, HMT
//! Theorem 10.6 gives
//!
//! ```text
//! E ‖A − QQᵀA‖₂ ≤ (1 + 4·√(k+p)·√(min(m,n)) / (p−1)) · σ_{k+1}(A),
//! ```
//!
//! i.e. the error is a modest multiple of the best possible rank-`k` error
//! `σ_{k+1}`, and `q` power iterations sharpen the factor towards 1 at the rate
//! `(σ_{k+1}/σ_k)^{2q}`.  The integration tests pin exactly this shape of bound
//! (with generous constants) plus *exact* recovery of rank-`k` inputs.
//!
//! ## Example
//!
//! ```
//! use sketch_gpu_sim::Device;
//! use sketch_la::{Layout, Matrix};
//! use sketch_lowrank::{rsvd, LowRankParams};
//!
//! let device = Device::h100();
//! // A rank-2 matrix: outer product of two pairs of vectors.
//! let a = Matrix::from_fn(40, 12, Layout::ColMajor, |i, j| {
//!     let (x, y) = (i as f64, j as f64);
//!     (x + 1.0) * (y + 2.0) + 0.5 * (x - 3.0) * (y - 1.0)
//! });
//! let svd = rsvd(&device, &a, &LowRankParams::new(2)).unwrap();
//! assert_eq!(svd.rank(), 2);
//! let back = svd.reconstruct(&device).unwrap();
//! assert!(a.max_abs_diff(&back).unwrap() < 1e-8);
//! ```

pub mod error;
pub mod matvec;
pub mod nystrom;
pub mod rangefinder;
pub mod rsvd;
pub mod streaming;

pub use error::LowRankError;
pub use matvec::{MatVecLike, SparseOperand};
pub use nystrom::{nystrom, NystromResult};
pub use rangefinder::{estimate_range_error, range_finder, LowRankParams, RangeSketch};
pub use rsvd::{deterministic_svd, rsvd, SvdResult};
pub use streaming::{streaming_svd, CountingBlockSource, RowBlockSource, StreamingSvd};
