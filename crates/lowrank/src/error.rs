//! Error handling for the low-rank approximation pipeline.
//!
//! The crate shares the workspace-wide [`sketch_core::Error`]: sketching failures,
//! dense linear algebra failures (for the Nyström path this includes
//! `NotPositiveDefinite` when the input is not numerically PSD), dimension
//! mismatches and invalid parameters all flow through one type.

/// The low-rank error type: an alias for the workspace-wide error.
pub use sketch_core::Error as LowRankError;

/// Convenience constructor for dimension mismatch errors with full context.
pub(crate) fn dim_err(
    op: &'static str,
    expected: usize,
    found: usize,
    operand: impl Into<String>,
) -> LowRankError {
    LowRankError::dimension_mismatch(op, expected, found, operand)
}

/// Convenience constructor for invalid-parameter errors.
pub(crate) fn param_err(detail: impl Into<String>) -> LowRankError {
    LowRankError::invalid_param(detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::LaError;

    #[test]
    fn display_messages_are_informative() {
        let e = dim_err("rsvd", 3, 2, "dense 2x3");
        assert!(e.to_string().contains("rsvd"));
        assert!(e.to_string().contains("dense 2x3"));
        assert!(param_err("k must be positive")
            .to_string()
            .contains("k must be positive"));
        let la: LowRankError = LaError::SingularTriangular { index: 0 }.into();
        assert!(la.to_string().contains("singular"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(param_err("x"), param_err("x"));
        assert_ne!(param_err("x"), param_err("y"));
    }
}
