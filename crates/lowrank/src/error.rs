//! Error type for the low-rank approximation pipeline.

use sketch_core::SketchError;
use sketch_la::LaError;
use std::fmt;

/// Errors returned by the randomized low-rank approximation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LowRankError {
    /// Operand dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Name of the routine that rejected the operands.
        op: &'static str,
        /// Human readable description of the mismatch.
        detail: String,
    },
    /// A routine was configured with an invalid parameter (e.g. a target rank of
    /// zero, or one exceeding the smaller matrix dimension).
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
    /// An underlying dense linear algebra routine failed.  For the Nyström path this
    /// includes [`LaError::NotPositiveDefinite`] when the input is not numerically
    /// PSD.
    La(LaError),
    /// Generating or applying a `sketch-core` test matrix failed.
    Sketch(SketchError),
}

impl fmt::Display for LowRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowRankError::DimensionMismatch { op, detail } => {
                write!(f, "{op}: dimension mismatch ({detail})")
            }
            LowRankError::InvalidParameter { detail } => {
                write!(f, "invalid low-rank parameter: {detail}")
            }
            LowRankError::La(e) => write!(f, "linear algebra failure in low-rank path: {e}"),
            LowRankError::Sketch(e) => write!(f, "sketch failure in low-rank path: {e}"),
        }
    }
}

impl std::error::Error for LowRankError {}

impl From<LaError> for LowRankError {
    fn from(e: LaError) -> Self {
        LowRankError::La(e)
    }
}

impl From<SketchError> for LowRankError {
    fn from(e: SketchError) -> Self {
        LowRankError::Sketch(e)
    }
}

/// Convenience constructor for dimension mismatch errors.
pub(crate) fn dim_err(op: &'static str, detail: impl Into<String>) -> LowRankError {
    LowRankError::DimensionMismatch {
        op,
        detail: detail.into(),
    }
}

/// Convenience constructor for invalid-parameter errors.
pub(crate) fn param_err(detail: impl Into<String>) -> LowRankError {
    LowRankError::InvalidParameter {
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(dim_err("rsvd", "A is 2x3").to_string().contains("rsvd"));
        assert!(param_err("k must be positive")
            .to_string()
            .contains("k must be positive"));
        let la: LowRankError = LaError::SingularTriangular { index: 0 }.into();
        assert!(la.to_string().contains("singular"));
        let sk: LowRankError = SketchError::InvalidParameter {
            detail: "zero".into(),
        }
        .into();
        assert!(sk.to_string().contains("zero"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(param_err("x"), param_err("x"));
        assert_ne!(param_err("x"), param_err("y"));
    }
}
