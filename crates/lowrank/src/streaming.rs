//! Single-pass streaming SVD: `A` is consumed row-block-by-row-block, exactly once.
//!
//! The sketch state follows Tropp et al.'s "practical sketching" scheme: a column
//! sketch `Y = AΩ` (`Ω ∈ R^{n x ℓ}`) and a row sketch `W = ΨA` (`Ψ ∈ R^{ℓ₂ x m}`,
//! `ℓ₂ = 2ℓ + 1`) are maintained incrementally, so each row block of `A` is touched
//! once and never revisited — the access pattern of
//! [`sketch_dist::BlockRowMatrix`].  At [`StreamingSvd::finalize`] the approximation
//! `A ≈ Q (ΨQ)† W` is assembled from the sketches alone and truncated to rank `k`
//! with the small Jacobi SVD.
//!
//! The columns of `Ψ` are regenerated deterministically from the *global* row index
//! (one Philox stream per row), which has two useful consequences: the drawn sketch
//! operators do not depend on how the rows are blocked (results agree across
//! blockings up to floating-point associativity, and are bit-for-bit reproducible
//! for a fixed blocking and seed), and `Ψ` never has to be stored — finalisation
//! re-derives the `ΨQ` product chunk by chunk.

use crate::error::{dim_err, param_err, LowRankError};
use crate::rangefinder::LowRankParams;
use crate::rsvd::SvdResult;
use sketch_dist::BlockRowMatrix;
use sketch_gpu_sim::{Device, KernelCost};
use sketch_la::qr::geqrf;
use sketch_la::{blas3, jacobi_svd, Layout, Matrix, Op};
use sketch_rng::fill;

/// Seed salt separating the row-sketch `Ψ` streams from the column-sketch `Ω`
/// streams (which use the caller's seed unsalted).
const PSI_SEED_SALT: u64 = 0xA5A5_5A5A_C3C3_3C3C;

/// Row-chunk size used when re-deriving `ΨQ` during finalisation.
const FINALIZE_CHUNK: usize = 1024;

/// A source of contiguous row blocks, the streaming pipeline's input abstraction.
///
/// `fetch` hands out block `b` (blocks are ordered top to bottom and disjoint); the
/// driver [`streaming_svd`] fetches each block exactly once, which the
/// [`CountingBlockSource`] wrapper can assert.
pub trait RowBlockSource {
    /// Total number of rows across all blocks.
    fn nrows(&self) -> usize;

    /// Number of columns (identical in every block).
    fn ncols(&self) -> usize;

    /// Number of row blocks.
    fn num_blocks(&self) -> usize;

    /// Access block `b`; the driver calls this once per block, in order.
    fn fetch(&mut self, block: usize) -> &Matrix;
}

impl RowBlockSource for BlockRowMatrix {
    fn nrows(&self) -> usize {
        BlockRowMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        BlockRowMatrix::ncols(self)
    }

    fn num_blocks(&self) -> usize {
        self.num_processes()
    }

    fn fetch(&mut self, block: usize) -> &Matrix {
        self.block(block)
    }
}

/// A wrapper that counts how many times each block is fetched — the instrument the
/// accuracy tests use to certify the pipeline is genuinely single-pass.
#[derive(Debug, Clone)]
pub struct CountingBlockSource<S> {
    inner: S,
    counts: Vec<usize>,
}

impl<S: RowBlockSource> CountingBlockSource<S> {
    /// Wrap a source, starting all counts at zero.
    pub fn new(inner: S) -> Self {
        let counts = vec![0; inner.num_blocks()];
        Self { inner, counts }
    }

    /// Fetch count per block, indexed by block number.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Recover the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RowBlockSource> RowBlockSource for CountingBlockSource<S> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }

    fn ncols(&self) -> usize {
        self.inner.ncols()
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn fetch(&mut self, block: usize) -> &Matrix {
        self.counts[block] += 1;
        self.inner.fetch(block)
    }
}

/// Incremental state of the single-pass streaming SVD.
///
/// Push row blocks top-to-bottom with [`push_block`](Self::push_block), then call
/// [`finalize`](Self::finalize).  Memory footprint is `O((m + n)·ℓ)` — the input
/// matrix itself is never stored.
#[derive(Debug, Clone)]
pub struct StreamingSvd {
    k: usize,
    l: usize,
    l2: usize,
    seed: u64,
    stream: u64,
    nrows: usize,
    ncols: usize,
    next_row: usize,
    omega: Matrix,
    y: Matrix,
    w: Matrix,
}

impl StreamingSvd {
    /// Initialise the sketch state for an `nrows x ncols` stream.
    ///
    /// The column sketch dimension is `ℓ = min(k + oversample, nrows, ncols)` and the
    /// row sketch uses `ℓ₂ = 2ℓ + 1`; `params.power_iters` is ignored (power
    /// iteration would require revisiting `A`, which a single-pass method cannot do).
    pub fn new(
        device: &Device,
        nrows: usize,
        ncols: usize,
        params: &LowRankParams,
    ) -> Result<Self, LowRankError> {
        let l = params.sketch_dim(nrows, ncols)?;
        let l2 = 2 * l + 1;
        let omega = params
            .sketch
            .test_matrix(device, ncols, l, params.seed, params.stream)?;
        Ok(Self {
            k: params.k,
            l,
            l2,
            seed: params.seed,
            stream: params.stream,
            nrows,
            ncols,
            next_row: 0,
            omega,
            y: Matrix::zeros(nrows, l),
            w: Matrix::zeros(l2, ncols),
        })
    }

    /// Number of rows consumed so far.
    pub fn rows_seen(&self) -> usize {
        self.next_row
    }

    /// The column-sketch width `ℓ`.
    pub fn sketch_dim(&self) -> usize {
        self.l
    }

    /// Columns `start..start+len` of `Ψ`, regenerated from the global row indices.
    fn psi_block(&self, device: &Device, start: usize, len: usize) -> Matrix {
        let mut p = Matrix::zeros(self.l2, len);
        for j in 0..len {
            let col = fill::gaussian_vec(
                self.seed ^ PSI_SEED_SALT,
                self.stream.wrapping_add((start + j) as u64),
                self.l2,
            );
            p.col_mut(j)
                .expect("psi block is column-major")
                .copy_from_slice(&col);
        }
        // Generation cost mirrors GaussianSketch: one write per variate plus the
        // Box-Muller arithmetic.
        let elems = (self.l2 * len) as u64;
        device.record(KernelCost::new(
            0,
            KernelCost::f64_bytes(elems),
            12 * elems,
            1,
        ));
        p
    }

    /// Consume the next row block (rows `rows_seen()..rows_seen()+block.nrows()`).
    ///
    /// Updates `Y[rows, :] = block · Ω` and `W += Ψ[:, rows] · block`; the block is
    /// read by two GEMMs and then dropped — it is never needed again.
    pub fn push_block(&mut self, device: &Device, block: &Matrix) -> Result<(), LowRankError> {
        if block.ncols() != self.ncols {
            return Err(dim_err(
                "push_block",
                self.ncols,
                block.ncols(),
                format!("block dense {}x{}", block.nrows(), block.ncols()),
            ));
        }
        let mb = block.nrows();
        if self.next_row + mb > self.nrows {
            return Err(dim_err(
                "push_block",
                self.nrows - self.next_row,
                mb,
                format!(
                    "block of {mb} rows overflows the declared {} total (seen {})",
                    self.nrows, self.next_row
                ),
            ));
        }
        let yb = blas3::gemm(device, 1.0, block, &self.omega, 0.0, None)?;
        for j in 0..self.l {
            for i in 0..mb {
                self.y.set(self.next_row + i, j, yb.get(i, j));
            }
        }
        let psi_b = self.psi_block(device, self.next_row, mb);
        self.w = blas3::gemm(device, 1.0, &psi_b, block, 1.0, Some(&self.w))?;
        self.next_row += mb;
        Ok(())
    }

    /// Assemble the truncated SVD from the sketches.
    ///
    /// `Q = qr(Y)`, `X = (ΨQ)† W` (a small least squares solve), and the SVD of the
    /// `ℓ x n` matrix `X` — computed via its transpose — yields
    /// `A ≈ Q X = (Q V_X) Σ U_Xᵀ`, truncated to rank `k`.
    pub fn finalize(self, device: &Device) -> Result<SvdResult, LowRankError> {
        if self.next_row != self.nrows {
            return Err(param_err(format!(
                "stream incomplete: saw {} of {} rows",
                self.next_row, self.nrows
            )));
        }
        let q = geqrf(device, &self.y)?.q_thin(device); // m x l

        // ΨQ, re-derived in row chunks so Ψ (ℓ₂ x m) is never materialised whole.
        let mut psi_q = Matrix::zeros(self.l2, self.l);
        let mut start = 0;
        while start < self.nrows {
            let len = FINALIZE_CHUNK.min(self.nrows - start);
            let psi_c = self.psi_block(device, start, len);
            let q_rows = Matrix::from_fn(len, self.l, Layout::ColMajor, |i, j| q.get(start + i, j));
            psi_q = blas3::gemm(device, 1.0, &psi_c, &q_rows, 1.0, Some(&psi_q))?;
            start += len;
        }

        // X = argmin_X ‖(ΨQ) X − W‖_F, one ℓ₂ x ℓ least squares solve per column.
        let f = geqrf(device, &psi_q)?;
        let mut x = Matrix::zeros(self.l, self.ncols);
        for j in 0..self.ncols {
            let col = self.w.col_to_vec(j);
            let sol = f.solve_ls(device, &col)?;
            x.col_mut(j)
                .expect("X is column-major")
                .copy_from_slice(&sol);
        }

        // X is ℓ x n (wide); factor Xᵀ = U_X Σ V_Xᵀ, so X = V_X Σ U_Xᵀ and
        // A ≈ Q X = (Q V_X) Σ U_Xᵀ.
        let xt = x.reinterpret_transposed(); // free transpose view, n x l
        let svd = jacobi_svd(device, &xt)?;
        let u_full = blas3::gemm_op(device, 1.0, Op::NoTrans, &q, Op::Trans, &svd.vt, 0.0, None)?;
        let k = self.k.min(svd.s.len());
        let u = u_full.submatrix(self.nrows, k)?;
        let s = svd.s[..k].to_vec();
        let vt = Matrix::from_fn(k, self.ncols, Layout::ColMajor, |i, j| svd.u.get(j, i));
        Ok(SvdResult { u, s, vt })
    }
}

/// Drive a [`RowBlockSource`] through the single-pass pipeline: fetch every block
/// exactly once, in order, and finalize.
pub fn streaming_svd<S: RowBlockSource>(
    device: &Device,
    source: &mut S,
    params: &LowRankParams,
) -> Result<SvdResult, LowRankError> {
    let mut state = StreamingSvd::new(device, source.nrows(), source.ncols(), params)?;
    for b in 0..source.num_blocks() {
        let block = source.fetch(b);
        state.push_block(device, block)?;
    }
    state.finalize(device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::norms::frobenius_rel_diff;

    fn device() -> Device {
        Device::unlimited()
    }

    fn rank_k_matrix(m: usize, n: usize, k: usize, seed: u64) -> Matrix {
        sketch_la::cond::rank_k_matrix(&device(), m, n, k, seed).unwrap()
    }

    fn frob_rel_err(a: &Matrix, approx: &Matrix) -> f64 {
        frobenius_rel_diff(&device(), a, approx).unwrap()
    }

    #[test]
    fn single_pass_recovers_exact_rank_k_matrices() {
        let d = device();
        let a = rank_k_matrix(90, 24, 5, 1);
        let mut source = BlockRowMatrix::split(&a, 4);
        let params = LowRankParams::new(5).with_seed(3, 0);
        let svd = streaming_svd(&d, &mut source, &params).unwrap();
        let back = svd.reconstruct(&d).unwrap();
        let err = frob_rel_err(&a, &back);
        assert!(err < 1e-9, "relative error {err}");
    }

    #[test]
    fn result_is_independent_of_the_blocking() {
        let d = device();
        let a = rank_k_matrix(60, 16, 4, 2);
        let params = LowRankParams::new(4).with_seed(9, 4);
        let mut results = Vec::new();
        for blocks in [1, 2, 5] {
            let mut source = BlockRowMatrix::split(&a, blocks);
            results.push(streaming_svd(&d, &mut source, &params).unwrap());
        }
        for r in &results[1..] {
            for (a_s, b_s) in results[0].s.iter().zip(r.s.iter()) {
                assert!((a_s - b_s).abs() < 1e-9, "{a_s} vs {b_s}");
            }
        }
    }

    #[test]
    fn counting_wrapper_proves_each_block_read_once() {
        let d = device();
        let a = rank_k_matrix(40, 12, 3, 3);
        let mut source = CountingBlockSource::new(BlockRowMatrix::split(&a, 5));
        let _ = streaming_svd(&d, &mut source, &LowRankParams::new(3)).unwrap();
        assert_eq!(source.counts(), &[1, 1, 1, 1, 1]);
    }

    #[test]
    fn push_based_api_matches_the_driver() {
        let d = device();
        let a = rank_k_matrix(30, 10, 3, 4);
        let params = LowRankParams::new(3).with_seed(5, 0);

        let mut source = BlockRowMatrix::split(&a, 3);
        let via_driver = streaming_svd(&d, &mut source, &params).unwrap();

        let mut state = StreamingSvd::new(&d, 30, 10, &params).unwrap();
        for (_, block) in BlockRowMatrix::split(&a, 3).iter() {
            state.push_block(&d, block).unwrap();
        }
        assert_eq!(state.rows_seen(), 30);
        let via_push = state.finalize(&d).unwrap();

        assert_eq!(via_driver.s, via_push.s);
        assert_eq!(via_driver.u.as_slice(), via_push.u.as_slice());
        assert_eq!(via_driver.vt.as_slice(), via_push.vt.as_slice());
    }

    #[test]
    fn misuse_is_rejected() {
        let d = device();
        let params = LowRankParams::new(2);
        // Wrong column count.
        let mut state = StreamingSvd::new(&d, 10, 6, &params).unwrap();
        assert!(state.push_block(&d, &Matrix::zeros(2, 5)).is_err());
        // Too many rows.
        assert!(state.push_block(&d, &Matrix::zeros(11, 6)).is_err());
        // Finalising before all rows arrived.
        state.push_block(&d, &Matrix::zeros(4, 6)).unwrap();
        assert!(state.finalize(&d).is_err());
    }

    #[test]
    fn finalize_chunking_does_not_change_the_result() {
        // A stream taller than FINALIZE_CHUNK exercises the chunked ΨQ accumulation
        // against the same matrix processed in one block.
        let d = device();
        let a = rank_k_matrix(FINALIZE_CHUNK + 37, 8, 2, 6);
        let params = LowRankParams::new(2).with_oversample(3).with_seed(1, 1);
        let mut one = BlockRowMatrix::split(&a, 1);
        let mut many = BlockRowMatrix::split(&a, 7);
        let r1 = streaming_svd(&d, &mut one, &params).unwrap();
        let r2 = streaming_svd(&d, &mut many, &params).unwrap();
        for (a_s, b_s) in r1.s.iter().zip(r2.s.iter()) {
            assert!((a_s - b_s).abs() < 1e-9);
        }
    }
}
