//! The randomized rangefinder (HMT Algorithm 4.1/4.4) and its posterior error
//! estimator (HMT Algorithm 4.3).
//!
//! `range_finder` draws a test matrix `Ω ∈ R^{n x ℓ}` with `ℓ = k + p`, forms
//! `Y = AΩ`, and orthonormalises it with Householder QR (`sketch-la::qr::geqrf`).
//! Optional power iteration replaces `Y` by `(AAᵀ)^q AΩ`, re-orthonormalising after
//! every application of `A` or `Aᵀ` so rounding does not collapse the small singular
//! directions.
//!
//! The test matrix is selected by [`RangeSketch`]: i.i.d. Gaussian columns, a
//! CountSketch, or an SRHT — the latter two built through their declarative
//! [`SketchSpec`]s so the rangefinder exercises exactly the operators the rest of
//! the workspace benchmarks.

use crate::error::{dim_err, param_err, LowRankError};
use crate::matvec::MatVecLike;
use sketch_core::{EmbeddingDim, Operand, Pipeline, SketchSpec};
use sketch_dist::{pipelined_sketch, ExecutorOptions};
use sketch_gpu_sim::{Device, DevicePool, KernelCost};
use sketch_la::norms::vec_norm2;
use sketch_la::qr::geqrf;
use sketch_la::{blas3, Layout, Matrix, Op};

/// Seed salt for the posterior estimator's probe vectors, so that reusing the
/// rangefinder's own `(seed, stream)` — the natural call — cannot alias the probes
/// with the columns of the test matrix `Ω` (aliased probes would lie inside
/// `span(Q)` by construction and certify any basis as perfect).
const PROBE_SEED_SALT: u64 = 0x50B3_57E1_0A7E_D00D;

/// Which random test matrix the rangefinder draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeSketch {
    /// Dense i.i.d. `N(0, 1)` test matrix — the HMT default, strongest guarantees.
    Gaussian,
    /// CountSketch test matrix (one `±1` per row of `Ω`), materialised via
    /// `sketch-core`'s Algorithm 2 operator — cheapest to generate and apply.
    CountSketch,
    /// Subsampled randomized Hadamard transform test matrix (Section 5 operator).
    Srht,
}

impl RangeSketch {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            RangeSketch::Gaussian => "Gaussian",
            RangeSketch::CountSketch => "CountSketch",
            RangeSketch::Srht => "SRHT",
        }
    }

    /// The declarative [`SketchSpec`] for the `l x n` operator `S` whose transpose is
    /// the test matrix `Ω`; `None` for the plain Gaussian (which is a direct Philox
    /// fill, not a `sketch-core` operator).
    ///
    /// The `sketch-core` specs take a single seed; the stream is folded in with a
    /// golden-ratio mix so `(seed, stream)` pairs stay distinct.
    pub fn spec(&self, n: usize, l: usize, seed: u64, stream: u64) -> Option<SketchSpec> {
        let mixed = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self {
            RangeSketch::Gaussian => None,
            RangeSketch::CountSketch => {
                Some(SketchSpec::countsketch(n, EmbeddingDim::Exact(l), mixed))
            }
            RangeSketch::Srht => Some(SketchSpec::srht(n, EmbeddingDim::Exact(l), mixed)),
        }
    }

    /// Materialise the `n x l` test matrix `Ω` for `(seed, stream)`.
    ///
    /// Gaussian columns are filled directly with the Philox generator.  CountSketch
    /// and SRHT build the corresponding `sketch-core` operator `S ∈ R^{l x n}`
    /// through its [`SketchSpec`] and materialise `Ω = Sᵀ`, so the rangefinder
    /// reuses the exact kernels (and cost accounting) of the sketching layer.
    pub fn test_matrix(
        &self,
        device: &Device,
        n: usize,
        l: usize,
        seed: u64,
        stream: u64,
    ) -> Result<Matrix, LowRankError> {
        if n == 0 || l == 0 {
            return Err(param_err("test matrix dimensions must be positive"));
        }
        match self {
            RangeSketch::Gaussian => Ok(Matrix::random_gaussian(
                n,
                l,
                Layout::ColMajor,
                seed,
                stream,
            )),
            RangeSketch::CountSketch => {
                // Ω = Sᵀ has exactly one ±1 per row, so scatter it directly from the
                // operator's row map instead of applying S to a dense n x n identity.
                let cs = self
                    .spec(n, l, seed, stream)
                    .expect("CountSketch has a spec")
                    .build_countsketch(device)?;
                let mut omega = Matrix::zeros(n, l);
                for (j, (&row, &sign)) in cs.rows().iter().zip(cs.signs().iter()).enumerate() {
                    omega.set(j, row, if sign { 1.0 } else { -1.0 });
                }
                device.record(KernelCost::new(
                    (n as u64) * 5,
                    KernelCost::f64_bytes((n * l) as u64),
                    0,
                    1,
                ));
                Ok(omega)
            }
            RangeSketch::Srht => {
                let op = self
                    .spec(n, l, seed, stream)
                    .expect("SRHT has a spec")
                    .build(device)?;
                let st = op.apply_matrix(device, &Matrix::identity(n))?;
                Ok(st.transpose(device))
            }
        }
    }
}

/// Parameters shared by every routine in the crate.
///
/// The defaults follow HMT's practical recommendations: oversampling `p = 8` and no
/// power iteration (add 1–2 iterations for slowly decaying spectra).  Seeds and
/// streams feed the Philox generator directly, so equal parameters produce
/// bit-identical factorisations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowRankParams {
    /// Target rank `k` of the approximation.
    pub k: usize,
    /// Oversampling `p`; the sketch dimension is `ℓ = k + p` (clamped to `min(m, n)`).
    pub oversample: usize,
    /// Number of power (subspace) iterations `q`.
    pub power_iters: usize,
    /// Which test matrix to draw.
    pub sketch: RangeSketch,
    /// Philox seed.
    pub seed: u64,
    /// Philox stream.
    pub stream: u64,
}

impl LowRankParams {
    /// Parameters for target rank `k` with the HMT defaults.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            oversample: 8,
            power_iters: 0,
            sketch: RangeSketch::Gaussian,
            seed: 0x5EED,
            stream: 0,
        }
    }

    /// Set the oversampling parameter `p`.
    pub fn with_oversample(mut self, p: usize) -> Self {
        self.oversample = p;
        self
    }

    /// Set the number of power iterations `q`.
    pub fn with_power_iters(mut self, q: usize) -> Self {
        self.power_iters = q;
        self
    }

    /// Select the test matrix family.
    pub fn with_sketch(mut self, sketch: RangeSketch) -> Self {
        self.sketch = sketch;
        self
    }

    /// Set the Philox seed and stream.
    pub fn with_seed(mut self, seed: u64, stream: u64) -> Self {
        self.seed = seed;
        self.stream = stream;
        self
    }

    /// The sketch dimension `ℓ = min(k + p, m, n)`, validated against the operand.
    pub(crate) fn sketch_dim(&self, m: usize, n: usize) -> Result<usize, LowRankError> {
        if self.k == 0 {
            return Err(param_err("target rank k must be positive"));
        }
        if self.k > m.min(n) {
            return Err(param_err(format!(
                "target rank {} exceeds min dimension of a {m}x{n} operand",
                self.k
            )));
        }
        Ok((self.k + self.oversample).min(m.min(n)))
    }
}

/// Orthonormalise the columns of `y` via Householder QR, returning the thin `Q`.
pub(crate) fn orthonormalize(device: &Device, y: &Matrix) -> Result<Matrix, LowRankError> {
    Ok(geqrf(device, y)?.q_thin(device))
}

/// Randomized rangefinder on the unified execution engine: an `m x ℓ` matrix `Q`
/// with orthonormal columns such that `A ≈ Q Qᵀ A`, computed on a [`DevicePool`].
///
/// **Serial is a pool of one** (e.g.
/// [`DevicePool::single`](sketch_gpu_sim::DevicePool::single)): the classic HMT
/// sequence — draw `Ω`, form `Y = A Ω`, orthonormalise — runs on pool device 0,
/// bit-for-bit identical to the pre-engine serial implementation for every test
/// matrix family including the plain Gaussian.
///
/// **On 2+ devices** the test-matrix product is recast as a *sketch application*:
/// with the CountSketch/SRHT test matrix `Ω = Sᵀ` (where `S` is the `ℓ x n`
/// operator from [`RangeSketch::spec`]), `Y = A Ω = (S Aᵀ)ᵀ` — exactly the
/// operation [`pipelined_sketch`] shards, overlaps and prices across the pool,
/// for dense *and* CSR operands.  Power iterations and the orthonormalisations
/// run on device 0.  The plain-Gaussian test matrix is a direct Philox fill with
/// no `sketch-core` operator to shard, so it is rejected with an
/// [`InvalidParameter`](sketch_core::Error::InvalidParameter) error on
/// multi-device pools — use the CountSketch/SRHT families there.
///
/// With a Gaussian test matrix, HMT Theorem 10.6 bounds the expected error by
/// `E‖A − QQᵀA‖ ≤ (1 + 4√(k+p)·√(min(m,n))/(p−1))·σ_{k+1}`, and each power iteration
/// drives the constant towards 1 like `(σ_{k+1}/σ_k)^{2q}`.
pub fn range_finder<M: MatVecLike + ?Sized>(
    pool: &DevicePool,
    a: &M,
    params: &LowRankParams,
    opts: &ExecutorOptions,
) -> Result<Matrix, LowRankError> {
    let device = pool.device(0);
    if pool.num_devices() == 1 {
        // The degenerate pool runs the exact serial HMT sequence on device 0.
        return range_finder_on(device, a, params);
    }
    let (m, n) = (a.nrows(), a.ncols());
    let l = params.sketch_dim(m, n)?;
    let Some(spec) = params.sketch.spec(n, l, params.seed, params.stream) else {
        return Err(param_err(
            "the plain Gaussian test matrix has no sketch-core operator to shard \
             across a multi-device pool; use RangeSketch::CountSketch / \
             RangeSketch::Srht, or a pool of one",
        ));
    };
    // Y = A Ω = (S Aᵀ)ᵀ: hand the transposed operand to the executor.  The
    // dense transpose charges itself through the device; the CSR counting-sort
    // transpose is charged here so the sparse path prices its O(nnz) passes
    // like the dense one does.
    let at_dense;
    let at_csr;
    let at: Operand<'_> = match a.as_operand() {
        Operand::Dense(d) => {
            at_dense = d.transpose(device);
            Operand::Dense(&at_dense)
        }
        Operand::Csr(s) => {
            at_csr = s.transpose();
            device.record(csr_transpose_cost(s.nnz(), s.nrows(), s.ncols()));
            Operand::Csr(&at_csr)
        }
        Operand::CsrRows(v) => {
            at_csr = v.to_csr().transpose();
            device.record(csr_transpose_cost(v.nnz(), v.nrows(), v.ncols()));
            Operand::Csr(&at_csr)
        }
    };
    let run = pipelined_sketch(pool, at, &Pipeline::single(spec), opts)?;
    // run.result = S Aᵀ = Ωᵀ Aᵀ = Yᵀ.
    let y = run.result.transpose(device);
    let mut q = orthonormalize(device, &y)?;
    for _ in 0..params.power_iters {
        let z = orthonormalize(device, &a.mul_transpose_right(device, &q)?)?;
        q = orthonormalize(device, &a.mul_right(device, &z)?)?;
    }
    Ok(q)
}

/// Modelled cost of the CSR→CSR counting-sort transpose (cuSPARSE `csr2csc`):
/// two passes over the nonzeros (histogram + scatter), index and value traffic
/// on both sides.
fn csr_transpose_cost(nnz: usize, nrows: usize, ncols: usize) -> KernelCost {
    let idx = std::mem::size_of::<usize>() as u64;
    let nnz64 = nnz as u64;
    KernelCost::new(
        2 * (KernelCost::f64_bytes(nnz64) + idx * nnz64) + idx * (nrows as u64 + 1),
        KernelCost::f64_bytes(nnz64) + idx * nnz64 + idx * (ncols as u64 + 1),
        nnz64,
        2,
    )
}

/// The serial HMT rangefinder on one device — the pool-of-one body of
/// [`range_finder`], kept crate-private so single-device drivers ([`crate::rsvd`])
/// reuse it without constructing a pool.
pub(crate) fn range_finder_on<M: MatVecLike + ?Sized>(
    device: &Device,
    a: &M,
    params: &LowRankParams,
) -> Result<Matrix, LowRankError> {
    let (m, n) = (a.nrows(), a.ncols());
    let l = params.sketch_dim(m, n)?;
    let omega = params
        .sketch
        .test_matrix(device, n, l, params.seed, params.stream)?;
    let y = a.mul_right(device, &omega)?;
    let mut q = orthonormalize(device, &y)?;
    for _ in 0..params.power_iters {
        // Subspace iteration with re-orthonormalisation after every product, the
        // numerically stable form of (A Aᵀ)^q A Ω.
        let z = orthonormalize(device, &a.mul_transpose_right(device, &q)?)?;
        q = orthonormalize(device, &a.mul_right(device, &z)?)?;
    }
    Ok(q)
}

/// Posterior error estimate for a computed range `Q` (HMT Algorithm 4.3).
///
/// Draws `probes` Gaussian probe vectors `ω_i` and returns
/// `10·√(2/π)·max_i ‖(I − QQᵀ) A ω_i‖₂`, which upper-bounds `‖A − QQᵀA‖₂` with
/// probability at least `1 − 10^{-probes}`.  Callers grow `k` adaptively by checking
/// this estimate against their tolerance and re-running the rangefinder with a larger
/// sketch when it is too big.
///
/// The probe stream is salted internally, so passing the same `(seed, stream)` that
/// produced the rangefinder's test matrix is safe: the probes are always independent
/// of `Ω`.
pub fn estimate_range_error<M: MatVecLike + ?Sized>(
    device: &Device,
    a: &M,
    q: &Matrix,
    probes: usize,
    seed: u64,
    stream: u64,
) -> Result<f64, LowRankError> {
    if probes == 0 {
        return Err(param_err("need at least one probe vector"));
    }
    if q.nrows() != a.nrows() {
        return Err(dim_err(
            "estimate_range_error",
            a.nrows(),
            q.nrows(),
            format!("Q dense {}x{}", q.nrows(), q.ncols()),
        ));
    }
    let omega = Matrix::random_gaussian(
        a.ncols(),
        probes,
        Layout::ColMajor,
        seed ^ PROBE_SEED_SALT,
        stream,
    );
    let y = a.mul_right(device, &omega)?;
    let qty = blas3::gemm_op(device, 1.0, Op::Trans, q, Op::NoTrans, &y, 0.0, None)?;
    // resid = Y - Q (Qᵀ Y).
    let resid = blas3::gemm(device, -1.0, q, &qty, 1.0, Some(&y))?;
    let max_norm = (0..probes)
        .map(|j| vec_norm2(&resid.col_to_vec(j)))
        .fold(0.0, f64::max);
    Ok(10.0 * std::f64::consts::FRAC_2_PI.sqrt() * max_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_la::cond::{geometric_singular_values, matrix_with_singular_values};

    fn device() -> Device {
        Device::unlimited()
    }

    fn opts() -> ExecutorOptions {
        ExecutorOptions::default()
    }

    fn pool1() -> DevicePool {
        DevicePool::unlimited(1)
    }

    #[test]
    fn pooled_rangefinder_captures_an_exact_low_rank_range() {
        let d = device();
        // Exactly rank-4 matrix: a perfect rangefinder reconstructs it to rounding.
        let mut sigma = geometric_singular_values(4, 1e2);
        sigma.resize(30, 0.0);
        let a = matrix_with_singular_values(&d, 120, 30, &sigma, 9).unwrap();
        for sketch in [RangeSketch::CountSketch, RangeSketch::Srht] {
            let params = LowRankParams::new(4).with_sketch(sketch).with_seed(3, 2);
            for devices in [2usize, 3] {
                let pool = DevicePool::unlimited(devices);
                let q = range_finder(&pool, &a, &params, &opts()).unwrap();
                assert_eq!((q.nrows(), q.ncols()), (120, 12));
                // Orthonormal columns.
                let gram =
                    blas3::gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &q, 0.0, None).unwrap();
                assert!(gram.max_abs_diff(&Matrix::identity(12)).unwrap() < 1e-10);
                // The projection recovers the rank-4 matrix.
                let qta =
                    blas3::gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &a, 0.0, None).unwrap();
                let back = blas3::gemm(&d, 1.0, &q, &qta, 0.0, None).unwrap();
                assert!(back.max_abs_diff(&a).unwrap() < 1e-8);
            }
        }
    }

    #[test]
    fn multi_device_rangefinder_accepts_csr_operands() {
        use sketch_sparse::{CooMatrix, CsrMatrix};

        let d = device();
        // A sparse matrix whose range is still low-dimensional-ish: random CSR.
        let mut coo = CooMatrix::new(90, 30);
        for i in 0..90 {
            coo.push(i, i % 30, ((i + 1) as f64 * 0.37).sin());
            coo.push(i, (i * 7 + 3) % 30, ((i + 2) as f64 * 0.11).cos());
        }
        let csr = CsrMatrix::from_coo(&coo);
        let params = LowRankParams::new(6)
            .with_sketch(RangeSketch::CountSketch)
            .with_seed(5, 1);
        let pool = DevicePool::unlimited(3);
        let q = range_finder(&pool, &csr, &params, &opts()).unwrap();
        assert_eq!((q.nrows(), q.ncols()), (90, 14));
        let gram = blas3::gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &q, 0.0, None).unwrap();
        assert!(gram.max_abs_diff(&Matrix::identity(14)).unwrap() < 1e-10);
    }

    #[test]
    fn multi_device_pool_rejects_the_plain_gaussian_family_but_pool_of_one_allows_it() {
        let a = Matrix::random_gaussian(40, 10, Layout::ColMajor, 1, 0);
        let params = LowRankParams::new(3).with_sketch(RangeSketch::Gaussian);
        let err = range_finder(&DevicePool::unlimited(2), &a, &params, &opts()).unwrap_err();
        assert!(matches!(err, LowRankError::InvalidParameter { .. }));
        // The unified entry point still serves the Gaussian family serially.
        let q = range_finder(&pool1(), &a, &params, &opts()).unwrap();
        assert_eq!((q.nrows(), q.ncols()), (40, 10));
    }

    #[test]
    fn q_has_orthonormal_columns_for_every_sketch() {
        let d = device();
        let a = Matrix::random_gaussian(60, 20, Layout::ColMajor, 3, 0);
        for sketch in [
            RangeSketch::Gaussian,
            RangeSketch::CountSketch,
            RangeSketch::Srht,
        ] {
            let params = LowRankParams::new(5).with_sketch(sketch).with_seed(7, 1);
            let q = range_finder(&pool1(), &a, &params, &opts()).unwrap();
            assert_eq!(q.nrows(), 60);
            assert_eq!(q.ncols(), 13);
            let gram = blas3::gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &q, 0.0, None).unwrap();
            assert!(
                gram.max_abs_diff(&Matrix::identity(13)).unwrap() < 1e-10,
                "{} Q not orthonormal",
                sketch.name()
            );
        }
    }

    #[test]
    fn pool_of_one_is_bit_identical_to_the_serial_rangefinder() {
        // The acceptance pin: routing through the unified entry point with a
        // 1-device pool reproduces the pre-engine serial path bit for bit.
        let d = device();
        let a = Matrix::random_gaussian(70, 24, Layout::ColMajor, 11, 0);
        for sketch in [
            RangeSketch::Gaussian,
            RangeSketch::CountSketch,
            RangeSketch::Srht,
        ] {
            let params = LowRankParams::new(5)
                .with_sketch(sketch)
                .with_seed(13, 2)
                .with_power_iters(1);
            let serial = range_finder_on(&d, &a, &params).unwrap();
            let pooled = range_finder(&pool1(), &a, &params, &opts()).unwrap();
            assert_eq!(
                serial.as_slice(),
                pooled.as_slice(),
                "{} drifted through the pool-of-one path",
                sketch.name()
            );
        }
    }

    #[test]
    fn exact_rank_k_matrix_is_captured_exactly() {
        let d = device();
        let a = sketch_la::cond::rank_k_matrix(&d, 50, 16, 4, 11).unwrap();
        let params = LowRankParams::new(4).with_oversample(4);
        let q = range_finder(&pool1(), &a, &params, &opts()).unwrap();
        // ‖A − QQᵀA‖ should be at roundoff.
        let est = estimate_range_error(&d, &a, &q, 5, 99, 0).unwrap();
        assert!(est < 1e-10, "estimate {est}");
    }

    #[test]
    fn power_iteration_improves_a_noisy_spectrum() {
        let d = device();
        let sigma = geometric_singular_values(20, 1e3);
        let a = matrix_with_singular_values(&d, 80, 20, &sigma, 5).unwrap();
        let base = LowRankParams::new(6).with_oversample(2).with_seed(1, 0);
        let q0 = range_finder(&pool1(), &a, &base, &opts()).unwrap();
        let q2 = range_finder(&pool1(), &a, &base.with_power_iters(2), &opts()).unwrap();
        let e0 = estimate_range_error(&d, &a, &q0, 6, 42, 0).unwrap();
        let e2 = estimate_range_error(&d, &a, &q2, 6, 42, 0).unwrap();
        assert!(
            e2 <= e0 * 1.5,
            "power iteration should not make things notably worse: {e2} vs {e0}"
        );
    }

    #[test]
    fn estimator_upper_bounds_the_true_residual() {
        let d = device();
        let sigma = geometric_singular_values(12, 1e2);
        let a = matrix_with_singular_values(&d, 40, 12, &sigma, 8).unwrap();
        let params = LowRankParams::new(3).with_oversample(3);
        let q = range_finder(&pool1(), &a, &params, &opts()).unwrap();
        // True spectral residual via the dense SVD of A − QQᵀA.
        let qta = a.mul_transpose_right(&d, &q).unwrap(); // n x l = (QᵀA)ᵀ
        let qqta = blas3::gemm_op(&d, 1.0, Op::NoTrans, &q, Op::Trans, &qta, 0.0, None).unwrap();
        let resid = blas3::gemm(&d, -1.0, &qqta, &Matrix::identity(12), 1.0, Some(&a)).unwrap();
        let true_norm = sketch_la::jacobi_svd(&d, &resid).unwrap().s[0];
        let est = estimate_range_error(&d, &a, &q, 8, 123, 0).unwrap();
        assert!(
            est >= true_norm * 0.9,
            "estimate {est} vs true residual {true_norm}"
        );
    }

    #[test]
    fn parameters_are_validated() {
        let d = device();
        let a = Matrix::zeros(10, 5);
        assert!(range_finder(&pool1(), &a, &LowRankParams::new(0), &opts()).is_err());
        assert!(range_finder(&pool1(), &a, &LowRankParams::new(6), &opts()).is_err());
        let q = Matrix::identity(10).submatrix(10, 2).unwrap();
        assert!(estimate_range_error(&d, &a, &q, 0, 1, 0).is_err());
        let q_bad = Matrix::zeros(9, 2);
        assert!(estimate_range_error(&d, &a, &q_bad, 2, 1, 0).is_err());
    }

    #[test]
    fn estimator_is_not_fooled_by_reusing_the_rangefinder_seed() {
        // Regression: with an unsalted probe stream, probes drawn from the same
        // (seed, stream) as the Gaussian test matrix alias its leading columns and
        // certify ANY basis as perfect.  A deliberately too-small basis must still
        // produce a large estimate when the caller reuses the params seed.
        let d = device();
        let sigma = geometric_singular_values(16, 1e1);
        let a = matrix_with_singular_values(&d, 50, 16, &sigma, 4).unwrap();
        let params = LowRankParams::new(2).with_oversample(0).with_seed(77, 5);
        let q = range_finder(&pool1(), &a, &params, &opts()).unwrap();
        let est = estimate_range_error(&d, &a, &q, 2, params.seed, params.stream).unwrap();
        assert!(
            est > 0.5 * sigma[2],
            "estimate {est} is vacuously small (σ_3 = {})",
            sigma[2]
        );
    }

    #[test]
    fn test_matrices_are_seed_deterministic() {
        let d = device();
        for sketch in [
            RangeSketch::Gaussian,
            RangeSketch::CountSketch,
            RangeSketch::Srht,
        ] {
            let a = sketch.test_matrix(&d, 32, 6, 9, 2).unwrap();
            let b = sketch.test_matrix(&d, 32, 6, 9, 2).unwrap();
            let c = sketch.test_matrix(&d, 32, 6, 9, 3).unwrap();
            assert_eq!(a.as_slice(), b.as_slice(), "{}", sketch.name());
            assert_ne!(a.as_slice(), c.as_slice(), "{}", sketch.name());
        }
    }
}
