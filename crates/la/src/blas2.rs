//! Level-2 BLAS: matrix-vector operations (GEMV, TRSV) with device cost accounting.

use crate::error::{dim_err, LaError};
use crate::matrix::{Matrix, Op};
use sketch_gpu_sim::{Device, KernelCost};

/// Which triangle of a matrix a triangular routine reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// The upper triangle (including the diagonal).
    Upper,
    /// The lower triangle (including the diagonal).
    Lower,
}

/// General matrix-vector product `y <- alpha * op(A) * x + beta * y`.
///
/// Returns the new `y` vector.
pub fn gemv(
    device: &Device,
    alpha: f64,
    op_a: Op,
    a: &Matrix,
    x: &[f64],
    beta: f64,
    y: Option<&[f64]>,
) -> Result<Vec<f64>, LaError> {
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    if x.len() != k {
        return Err(dim_err(
            "gemv",
            format!("op(A) is {m}x{k} but x has length {}", x.len()),
        ));
    }
    if let Some(y0) = y {
        if y0.len() != m {
            return Err(dim_err(
                "gemv",
                format!("op(A) is {m}x{k} but y has length {}", y0.len()),
            ));
        }
    }

    let mut out = vec![0.0; m];
    if beta != 0.0 {
        if let Some(y0) = y {
            for (o, &v) in out.iter_mut().zip(y0.iter()) {
                *o = beta * v;
            }
        }
    }
    for i in 0..m {
        let mut acc = 0.0;
        for j in 0..k {
            acc += op_a.get(a, i, j) * x[j];
        }
        out[i] += alpha * acc;
    }

    let cost = KernelCost::new(
        KernelCost::f64_bytes((m * k + k + if beta != 0.0 { m } else { 0 }) as u64),
        KernelCost::f64_bytes(m as u64),
        (2 * m * k) as u64,
        1,
    );
    device.record(cost);
    Ok(out)
}

/// Triangular solve `op(T) x = b` with a vector right-hand side (TRSV).
///
/// `t` must be square; only the requested triangle is read.
pub fn trsv(
    device: &Device,
    triangle: Triangle,
    op_t: Op,
    t: &Matrix,
    b: &[f64],
) -> Result<Vec<f64>, LaError> {
    let n = t.nrows();
    if t.ncols() != n {
        return Err(dim_err("trsv", format!("T is {}x{}", t.nrows(), t.ncols())));
    }
    if b.len() != n {
        return Err(dim_err(
            "trsv",
            format!("T is {n}x{n} but b has length {}", b.len()),
        ));
    }

    // Solving with op(T)=Trans flips the effective triangle.
    let effective = match (triangle, op_t) {
        (Triangle::Upper, Op::NoTrans) | (Triangle::Lower, Op::Trans) => Triangle::Upper,
        (Triangle::Lower, Op::NoTrans) | (Triangle::Upper, Op::Trans) => Triangle::Lower,
    };
    let elem = |i: usize, j: usize| op_t.get(t, i, j);

    let mut x = b.to_vec();
    match effective {
        Triangle::Upper => {
            for i in (0..n).rev() {
                let diag = elem(i, i);
                if diag == 0.0 {
                    return Err(LaError::SingularTriangular { index: i });
                }
                let mut acc = x[i];
                for j in i + 1..n {
                    acc -= elem(i, j) * x[j];
                }
                x[i] = acc / diag;
            }
        }
        Triangle::Lower => {
            for i in 0..n {
                let diag = elem(i, i);
                if diag == 0.0 {
                    return Err(LaError::SingularTriangular { index: i });
                }
                let mut acc = x[i];
                for j in 0..i {
                    acc -= elem(i, j) * x[j];
                }
                x[i] = acc / diag;
            }
        }
    }

    let nn = n as u64;
    device.record(KernelCost::new(
        KernelCost::f64_bytes(nn * (nn + 1) / 2 + nn),
        KernelCost::f64_bytes(nn),
        nn * nn,
        1,
    ));
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn gemv_matches_manual_product() {
        let d = device();
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = gemv(&d, 1.0, Op::NoTrans, &a, &[1.0, 1.0], 0.0, None).unwrap();
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
    }

    #[test]
    fn gemv_transposed_operand() {
        let d = device();
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        // op(A) = Aᵀ is 2x3.
        let y = gemv(&d, 1.0, Op::Trans, &a, &[1.0, 0.0, -1.0], 0.0, None).unwrap();
        assert_eq!(y, vec![-4.0, -4.0]);
    }

    #[test]
    fn gemv_alpha_beta_combination() {
        let d = device();
        let a = Matrix::identity(2);
        let y0 = vec![10.0, 20.0];
        let y = gemv(&d, 2.0, Op::NoTrans, &a, &[1.0, 2.0], 0.5, Some(&y0)).unwrap();
        assert_eq!(y, vec![7.0, 14.0]);
    }

    #[test]
    fn gemv_rejects_bad_dimensions() {
        let d = device();
        let a = Matrix::identity(3);
        assert!(gemv(&d, 1.0, Op::NoTrans, &a, &[1.0], 0.0, None).is_err());
        assert!(gemv(&d, 1.0, Op::NoTrans, &a, &[1.0; 3], 1.0, Some(&[1.0])).is_err());
    }

    #[test]
    fn gemv_records_flops() {
        let d = device();
        let a = Matrix::zeros(4, 5);
        let _ = gemv(&d, 1.0, Op::NoTrans, &a, &[0.0; 5], 0.0, None).unwrap();
        assert_eq!(d.tracker().snapshot().flops, 40);
    }

    #[test]
    fn trsv_upper_and_lower_round_trip() {
        let d = device();
        // Upper triangular system.
        let u = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.0, 3.0, -1.0], &[0.0, 0.0, 4.0]]);
        let x_true = vec![1.0, -2.0, 0.5];
        // b = U * x_true
        let b = gemv(&d, 1.0, Op::NoTrans, &u, &x_true, 0.0, None).unwrap();
        let x = trsv(&d, Triangle::Upper, Op::NoTrans, &u, &b).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
        }

        // Lower triangular via the transpose of U.
        let bt = gemv(&d, 1.0, Op::Trans, &u, &x_true, 0.0, None).unwrap();
        let xt = trsv(&d, Triangle::Upper, Op::Trans, &u, &bt).unwrap();
        for (a, b) in xt.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn trsv_lower_triangle() {
        let d = device();
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let b = vec![4.0, 11.0];
        let x = trsv(&d, Triangle::Lower, Op::NoTrans, &l, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trsv_detects_singularity_and_bad_shapes() {
        let d = device();
        let mut u = Matrix::identity(3);
        u.set(1, 1, 0.0);
        let err = trsv(&d, Triangle::Upper, Op::NoTrans, &u, &[1.0; 3]).unwrap_err();
        assert_eq!(err, LaError::SingularTriangular { index: 1 });

        let rect = Matrix::zeros_with_layout(2, 3, Layout::ColMajor);
        assert!(trsv(&d, Triangle::Upper, Op::NoTrans, &rect, &[1.0; 2]).is_err());
        let sq = Matrix::identity(2);
        assert!(trsv(&d, Triangle::Upper, Op::NoTrans, &sq, &[1.0; 3]).is_err());
    }
}
