//! Cholesky factorisation (POTRF), the backbone of the normal equations solver.
//!
//! The paper solves the normal equations by forming the Gram matrix `G = AᵀA`, running
//! cuSOLVER's `POTRF`, and back-substituting (Section 6.1/6.3).  The same factorisation
//! appears inside rand_cholQR (Algorithm 4, step 5).  The factorisation fails — exactly
//! as it should — when `κ(A)` exceeds `u^{-1/2}` and the Gram matrix loses numerical
//! positive definiteness, which is the mechanism behind the normal-equation failures in
//! Figure 8.

use crate::error::{dim_err, LaError};
use crate::matrix::{Layout, Matrix};
use sketch_gpu_sim::{Device, KernelCost};

/// Compute the upper triangular Cholesky factor `R` with `G = Rᵀ R`.
///
/// Only the upper triangle of `g` is read; `g` must be square and symmetric positive
/// definite (to working precision), otherwise [`LaError::NotPositiveDefinite`] is
/// returned with the offending pivot.
pub fn potrf_upper(device: &Device, g: &Matrix) -> Result<Matrix, LaError> {
    let n = g.nrows();
    if g.ncols() != n {
        return Err(dim_err(
            "potrf",
            format!("G is {}x{}", g.nrows(), g.ncols()),
        ));
    }

    let mut r = Matrix::zeros_with_layout(n, n, Layout::ColMajor);
    for j in 0..n {
        // Diagonal entry.
        let mut diag = g.get(j, j);
        for k in 0..j {
            let rkj = r.get(k, j);
            diag -= rkj * rkj;
        }
        if diag <= 0.0 || !diag.is_finite() {
            return Err(LaError::NotPositiveDefinite {
                column: j,
                pivot: diag,
            });
        }
        let rjj = diag.sqrt();
        r.set(j, j, rjj);

        // Off-diagonal entries of row j (columns j+1..n of the upper factor).
        for i in j + 1..n {
            let mut val = g.get(j, i);
            for k in 0..j {
                val -= r.get(k, j) * r.get(k, i);
            }
            r.set(j, i, val / rjj);
        }
    }

    let n64 = n as u64;
    device.record(KernelCost::new(
        KernelCost::f64_bytes(n64 * n64),
        KernelCost::f64_bytes(n64 * (n64 + 1) / 2),
        n64 * n64 * n64 / 3 + 2 * n64 * n64,
        1,
    ));
    Ok(r)
}

/// Lower triangular Cholesky factor `L` with `G = L Lᵀ` (transpose of [`potrf_upper`]).
pub fn potrf_lower(device: &Device, g: &Matrix) -> Result<Matrix, LaError> {
    let r = potrf_upper(device, g)?;
    Ok(r.transpose(device))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm_op, gram_gemm};
    use crate::matrix::Op;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::unlimited()
    }

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        // AᵀA + n*I is safely positive definite.
        let d = device();
        let a = Matrix::random_gaussian(2 * n, n, Layout::ColMajor, seed, 0);
        let mut g = gram_gemm(&d, &a).unwrap();
        for i in 0..n {
            g.add_to(i, i, n as f64);
        }
        g
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let d = device();
        let g = spd_matrix(8, 1);
        let r = potrf_upper(&d, &g).unwrap();
        let rtr = gemm_op(&d, 1.0, Op::Trans, &r, Op::NoTrans, &r, 0.0, None).unwrap();
        assert!(rtr.max_abs_diff(&g).unwrap() < 1e-9);
    }

    #[test]
    fn cholesky_factor_is_upper_triangular_with_positive_diagonal() {
        let d = device();
        let g = spd_matrix(6, 2);
        let r = potrf_upper(&d, &g).unwrap();
        for i in 0..6 {
            assert!(r.get(i, i) > 0.0);
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn lower_factor_is_transpose_of_upper() {
        let d = device();
        let g = spd_matrix(5, 3);
        let r = potrf_upper(&d, &g).unwrap();
        let l = potrf_lower(&d, &g).unwrap();
        assert!(l.max_abs_diff(&r.transpose(&d)).unwrap() < 1e-14);
    }

    #[test]
    fn identity_factors_to_identity() {
        let d = device();
        let r = potrf_upper(&d, &Matrix::identity(4)).unwrap();
        assert!(r.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-15);
    }

    #[test]
    fn indefinite_matrix_is_rejected_with_pivot_information() {
        let d = device();
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = potrf_upper(&d, &g).unwrap_err();
        match err {
            LaError::NotPositiveDefinite { column, pivot } => {
                assert_eq!(column, 1);
                assert!(pivot <= 0.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn zero_matrix_is_rejected_at_first_column() {
        let d = device();
        let err = potrf_upper(&d, &Matrix::zeros(3, 3)).unwrap_err();
        assert!(matches!(
            err,
            LaError::NotPositiveDefinite { column: 0, .. }
        ));
    }

    #[test]
    fn non_square_input_is_rejected() {
        let d = device();
        assert!(potrf_upper(&d, &Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn records_cubic_flop_count() {
        let d = device();
        let g = spd_matrix(10, 4);
        d.tracker().reset();
        let _ = potrf_upper(&d, &g).unwrap();
        let flops = d.tracker().snapshot().flops;
        assert!(flops >= 1000 / 3);
        assert!(flops < 10_000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_cholesky_round_trip(n in 1usize..10, seed in 0u64..200) {
            let d = device();
            let g = spd_matrix(n, seed);
            let r = potrf_upper(&d, &g).unwrap();
            let rtr = gemm_op(&d, 1.0, Op::Trans, &r, Op::NoTrans, &r, 0.0, None).unwrap();
            prop_assert!(rtr.max_abs_diff(&g).unwrap() < 1e-8 * (n as f64));
        }
    }
}
