//! Householder QR factorisation (GEQRF) and reflector application (ORMQR).
//!
//! The paper's sketch-and-solve pipeline (Section 6.1) computes the QR factorisation of
//! the *sketched* matrix with cuSOLVER's `GeQRF`, applies the reflectors to the sketched
//! right-hand side with `OrMQR`, and finishes with a triangular solve — explicitly
//! avoiding `GeLS`, which the authors found much slower.  This module provides the same
//! three building blocks plus an explicit thin-Q extraction used by rand_cholQR tests.

use crate::blas1::nrm2_unrecorded;
use crate::blas2::{trsv, Triangle};
use crate::error::{dim_err, LaError};
use crate::matrix::{Layout, Matrix, Op};
use sketch_gpu_sim::{Device, KernelCost};

/// The compact Householder QR factorisation of an `m x n` matrix (`m >= n`).
///
/// `factors` holds `R` in its upper triangle and the Householder vectors below the
/// diagonal (each with an implicit unit leading entry); `taus` holds the scalar
/// coefficients, mirroring LAPACK's `geqrf` output.
#[derive(Debug, Clone)]
pub struct QrFactors {
    factors: Matrix,
    taus: Vec<f64>,
}

/// Approximate block size used when modelling the memory traffic of a blocked QR; the
/// flop counts are exact, the traffic model assumes the panel is re-read once per block
/// column rather than once per column.
const QR_MODEL_BLOCK: u64 = 32;

/// Compute the Householder QR factorisation of `a` (GEQRF).
///
/// Requires `a.nrows() >= a.ncols()`.
pub fn geqrf(device: &Device, a: &Matrix) -> Result<QrFactors, LaError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(LaError::NotOverdetermined { rows: m, cols: n });
    }

    let mut f = a.to_layout(device, Layout::ColMajor);
    let mut taus = vec![0.0; n];

    for k in 0..n {
        // Build the Householder reflector for column k from rows k..m.
        let col = f.col(k).expect("col-major");
        let x = &col[k..m];
        let norm = nrm2_unrecorded(x);
        if norm == 0.0 {
            taus[k] = 0.0;
            continue;
        }
        let a_kk = x[0];
        let beta = if a_kk >= 0.0 { -norm } else { norm };
        let tau = (beta - a_kk) / beta;
        let scale = 1.0 / (a_kk - beta);

        // Write the reflector back into the column: implicit 1 at row k, scaled tail.
        {
            let col = f.col_mut(k).expect("col-major");
            col[k] = beta;
            for i in k + 1..m {
                col[i] *= scale;
            }
        }
        taus[k] = tau;

        // Apply H = I - tau v vᵀ to the trailing columns.
        let v: Vec<f64> = {
            let col = f.col(k).expect("col-major");
            let mut v = vec![0.0; m - k];
            v[0] = 1.0;
            v[1..].copy_from_slice(&col[k + 1..m]);
            v
        };
        for j in k + 1..n {
            let col_j = f.col_mut(j).expect("col-major");
            let tail = &mut col_j[k..m];
            let mut w = 0.0;
            for (vi, ti) in v.iter().zip(tail.iter()) {
                w += vi * ti;
            }
            w *= tau;
            for (vi, ti) in v.iter().zip(tail.iter_mut()) {
                *ti -= w * vi;
            }
        }
    }

    let (m64, n64) = (m as u64, n as u64);
    let flops = 2 * m64 * n64 * n64 - (2 * n64 * n64 * n64) / 3;
    let passes = n64.div_ceil(QR_MODEL_BLOCK).max(1);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(m64 * n64) * passes,
        KernelCost::f64_bytes(m64 * n64) * passes,
        flops,
        n64,
    ));

    Ok(QrFactors { factors: f, taus })
}

impl QrFactors {
    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.factors.nrows()
    }

    /// Number of columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.factors.ncols()
    }

    /// The raw compact factors (R + reflectors), mainly for diagnostics.
    pub fn factors(&self) -> &Matrix {
        &self.factors
    }

    /// The Householder coefficients.
    pub fn taus(&self) -> &[f64] {
        &self.taus
    }

    /// Extract the `n x n` upper triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.ncols();
        Matrix::from_fn(n, n, Layout::ColMajor, |i, j| {
            if i <= j {
                self.factors.get(i, j)
            } else {
                0.0
            }
        })
    }

    /// Apply `Qᵀ` to a vector of length `m` (ORMQR with side=left, trans=T).
    pub fn apply_qt_vec(&self, device: &Device, b: &[f64]) -> Result<Vec<f64>, LaError> {
        let m = self.nrows();
        let n = self.ncols();
        if b.len() != m {
            return Err(dim_err(
                "ormqr",
                format!("factor has {m} rows but b has length {}", b.len()),
            ));
        }
        let mut y = b.to_vec();
        // Qᵀ = H_{n-1} ... H_1 H_0 applied as H_0 first.
        for k in 0..n {
            self.apply_reflector(k, &mut y);
        }
        let (m64, n64) = (m as u64, n as u64);
        device.record(KernelCost::new(
            KernelCost::f64_bytes(m64 * n64 + m64),
            KernelCost::f64_bytes(m64),
            4 * m64 * n64,
            1,
        ));
        Ok(y)
    }

    /// Apply `Q` to a vector of length `m` (ORMQR with side=left, trans=N).
    pub fn apply_q_vec(&self, device: &Device, b: &[f64]) -> Result<Vec<f64>, LaError> {
        let m = self.nrows();
        let n = self.ncols();
        if b.len() != m {
            return Err(dim_err(
                "ormqr",
                format!("factor has {m} rows but b has length {}", b.len()),
            ));
        }
        let mut y = b.to_vec();
        for k in (0..n).rev() {
            self.apply_reflector(k, &mut y);
        }
        let (m64, n64) = (m as u64, n as u64);
        device.record(KernelCost::new(
            KernelCost::f64_bytes(m64 * n64 + m64),
            KernelCost::f64_bytes(m64),
            4 * m64 * n64,
            1,
        ));
        Ok(y)
    }

    /// Apply reflector `k` (symmetric, so the same routine serves Q and Qᵀ) to `y`.
    fn apply_reflector(&self, k: usize, y: &mut [f64]) {
        let m = self.nrows();
        let tau = self.taus[k];
        if tau == 0.0 {
            return;
        }
        let col = self.factors.col(k).expect("col-major");
        // v = [1, col[k+1..m]] acting on y[k..m].
        let mut w = y[k];
        for i in k + 1..m {
            w += col[i] * y[i];
        }
        w *= tau;
        y[k] -= w;
        for i in k + 1..m {
            y[i] -= w * col[i];
        }
    }

    /// Materialise the thin orthogonal factor `Q` (`m x n`).
    pub fn q_thin(&self, device: &Device) -> Matrix {
        let m = self.nrows();
        let n = self.ncols();
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            let mut e = vec![0.0; m];
            e[j] = 1.0;
            for k in (0..n).rev() {
                self.apply_reflector(k, &mut e);
            }
            q.col_mut(j).expect("col-major").copy_from_slice(&e);
        }
        let (m64, n64) = (m as u64, n as u64);
        device.record(KernelCost::new(
            KernelCost::f64_bytes(m64 * n64),
            KernelCost::f64_bytes(m64 * n64),
            4 * m64 * n64 * n64,
            1,
        ));
        q
    }

    /// Solve the least squares problem `min ||b - A x||` given this factorisation of
    /// `A`: `x = R^{-1} (Qᵀ b)[0..n]` — GEQRF + ORMQR + TRSV, the exact sequence the
    /// paper uses for its sketch-and-solve solves.
    pub fn solve_ls(&self, device: &Device, b: &[f64]) -> Result<Vec<f64>, LaError> {
        let n = self.ncols();
        let qtb = self.apply_qt_vec(device, b)?;
        let r = self.r();
        trsv(device, Triangle::Upper, Op::NoTrans, &r, &qtb[..n])
    }
}

/// Convenience: full economy QR returning `(Q, R)` explicitly.
pub fn economy_qr(device: &Device, a: &Matrix) -> Result<(Matrix, Matrix), LaError> {
    let f = geqrf(device, a)?;
    Ok((f.q_thin(device), f.r()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::{gemm, gemm_op};
    use proptest::prelude::*;

    fn device() -> Device {
        Device::unlimited()
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "difference {}",
            a.max_abs_diff(b).unwrap()
        );
    }

    #[test]
    fn qr_reconstructs_the_matrix() {
        let d = device();
        let a = Matrix::random_gaussian(30, 8, Layout::ColMajor, 1, 0);
        let (q, r) = economy_qr(&d, &a).unwrap();
        let qr = gemm(&d, 1.0, &q, &r, 0.0, None).unwrap();
        assert_close(&qr, &a, 1e-10);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let d = device();
        let a = Matrix::random_gaussian(40, 10, Layout::ColMajor, 2, 0);
        let (q, _) = economy_qr(&d, &a).unwrap();
        let qtq = gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &q, 0.0, None).unwrap();
        assert_close(&qtq, &Matrix::identity(10), 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let d = device();
        let a = Matrix::random_gaussian(20, 6, Layout::ColMajor, 3, 0);
        let r = geqrf(&d, &a).unwrap().r();
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn qt_then_q_is_identity_on_vectors() {
        let d = device();
        let a = Matrix::random_gaussian(25, 5, Layout::ColMajor, 4, 0);
        let f = geqrf(&d, &a).unwrap();
        let b: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        let qtb = f.apply_qt_vec(&d, &b).unwrap();
        let back = f.apply_q_vec(&d, &qtb).unwrap();
        for (x, y) in b.iter().zip(&back) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_ls_recovers_exact_solution_for_consistent_system() {
        let d = device();
        let a = Matrix::random_gaussian(50, 7, Layout::ColMajor, 5, 0);
        let x_true: Vec<f64> = (0..7).map(|i| 1.0 + i as f64).collect();
        let b = crate::blas2::gemv(&d, 1.0, Op::NoTrans, &a, &x_true, 0.0, None).unwrap();
        let f = geqrf(&d, &a).unwrap();
        let x = f.solve_ls(&d, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn qr_of_square_identity_is_identity() {
        let d = device();
        let f = geqrf(&d, &Matrix::identity(5)).unwrap();
        let q = f.q_thin(&d);
        // Q should be +/- identity columns; QR = I must hold exactly up to roundoff.
        let qr = gemm(&d, 1.0, &q, &f.r(), 0.0, None).unwrap();
        assert_close(&qr, &Matrix::identity(5), 1e-12);
    }

    #[test]
    fn qr_handles_rank_deficient_zero_column() {
        let d = device();
        let mut a = Matrix::random_gaussian(10, 4, Layout::ColMajor, 6, 0);
        for i in 0..10 {
            a.set(i, 2, 0.0);
        }
        let f = geqrf(&d, &a).unwrap();
        let (q, r) = (f.q_thin(&d), f.r());
        let qr = gemm(&d, 1.0, &q, &r, 0.0, None).unwrap();
        assert_close(&qr, &a, 1e-10);
        // The zero column yields a zero diagonal in R.
        assert!(r.get(2, 2).abs() < 1e-12);
    }

    #[test]
    fn qr_rejects_underdetermined_input() {
        let d = device();
        let a = Matrix::zeros(3, 5);
        assert!(matches!(
            geqrf(&d, &a),
            Err(LaError::NotOverdetermined { rows: 3, cols: 5 })
        ));
    }

    #[test]
    fn ormqr_rejects_wrong_vector_length() {
        let d = device();
        let a = Matrix::random_gaussian(8, 3, Layout::ColMajor, 7, 0);
        let f = geqrf(&d, &a).unwrap();
        assert!(f.apply_qt_vec(&d, &[1.0; 5]).is_err());
        assert!(f.apply_q_vec(&d, &[1.0; 5]).is_err());
    }

    #[test]
    fn qt_preserves_euclidean_norm() {
        let d = device();
        let a = Matrix::random_gaussian(60, 12, Layout::ColMajor, 8, 0);
        let f = geqrf(&d, &a).unwrap();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).cos()).collect();
        let qtb = f.apply_qt_vec(&d, &b).unwrap();
        let nb = nrm2_unrecorded(&b);
        let nq = nrm2_unrecorded(&qtb);
        assert!((nb - nq).abs() / nb < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_qr_reconstruction(m in 4usize..40, n in 1usize..8, seed in 0u64..500) {
            prop_assume!(m >= n);
            let d = device();
            let a = Matrix::random_gaussian(m, n, Layout::ColMajor, seed, 0);
            let (q, r) = economy_qr(&d, &a).unwrap();
            let qr = gemm(&d, 1.0, &q, &r, 0.0, None).unwrap();
            prop_assert!(qr.max_abs_diff(&a).unwrap() < 1e-9);
        }

        #[test]
        fn prop_solve_ls_matches_normal_equations(
            m in 24usize..60,
            n in 1usize..7,
            seed in 0u64..300,
        ) {
            // Tall i.i.d. Gaussian matrices with m >= 3n are well conditioned with
            // overwhelming probability, so the normal equations are trustworthy here.
            prop_assume!(m >= 3 * n);
            let d = device();
            let a = Matrix::random_gaussian(m, n, Layout::ColMajor, seed, 0);
            let b: Vec<f64> = (0..m).map(|i| (i as f64 * 0.61).sin()).collect();

            let x_qr = geqrf(&d, &a).unwrap().solve_ls(&d, &b).unwrap();

            // Normal equations: AᵀA x = Aᵀb via Cholesky (Rᵀ R x = Aᵀ b).
            let gram = crate::blas3::gram_gemm(&d, &a).unwrap();
            let r = crate::chol::potrf_upper(&d, &gram).unwrap();
            let atb = crate::blas2::gemv(&d, 1.0, Op::Trans, &a, &b, 0.0, None).unwrap();
            let z = trsv(&d, Triangle::Upper, Op::Trans, &r, &atb).unwrap();
            let x_ne = trsv(&d, Triangle::Upper, Op::NoTrans, &r, &z).unwrap();

            let scale = x_ne.iter().fold(1.0f64, |acc, x| acc.max(x.abs()));
            for (q, ne) in x_qr.iter().zip(&x_ne) {
                prop_assert!((q - ne).abs() < 1e-8 * scale, "{q} vs {ne}");
            }
        }

        #[test]
        fn prop_q_orthonormal(m in 4usize..40, n in 1usize..8, seed in 0u64..500) {
            prop_assume!(m >= n);
            let d = device();
            let a = Matrix::random_gaussian(m, n, Layout::ColMajor, seed, 0);
            let (q, _) = economy_qr(&d, &a).unwrap();
            let qtq = gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &q, 0.0, None).unwrap();
            prop_assert!(qtq.max_abs_diff(&Matrix::identity(n)).unwrap() < 1e-9);
        }
    }
}
