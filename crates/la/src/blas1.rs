//! Level-1 BLAS: vector-vector operations with device cost accounting.

use sketch_gpu_sim::{Device, KernelCost};

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot(device: &Device, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let n = x.len() as u64;
    device.record(KernelCost::new(KernelCost::f64_bytes(2 * n), 0, 2 * n, 1));
    dot_unrecorded(x, y)
}

/// Dot product without touching the device counters (used inside larger kernels that
/// account for their traffic wholesale).
#[inline]
pub fn dot_unrecorded(x: &[f64], y: &[f64]) -> f64 {
    // Four-way unrolled accumulation: gives the compiler an easy autovectorisation
    // target and reduces the length of the sequential dependence chain.
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc0 += x[i] * y[i];
        acc1 += x[i + 1] * y[i + 1];
        acc2 += x[i + 2] * y[i + 2];
        acc3 += x[i + 3] * y[i + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for i in chunks * 4..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y <- alpha * x + y`.
pub fn axpy(device: &Device, alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let n = x.len() as u64;
    device.record(KernelCost::new(
        KernelCost::f64_bytes(2 * n),
        KernelCost::f64_bytes(n),
        2 * n,
        1,
    ));
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm `||x||_2`.
pub fn nrm2(device: &Device, x: &[f64]) -> f64 {
    let n = x.len() as u64;
    device.record(KernelCost::new(KernelCost::f64_bytes(n), 0, 2 * n, 1));
    nrm2_unrecorded(x)
}

/// Euclidean norm without cost recording; uses scaling to avoid overflow/underflow.
pub fn nrm2_unrecorded(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let absxi = xi.abs();
            if scale < absxi {
                ssq = 1.0 + ssq * (scale / absxi).powi(2);
                scale = absxi;
            } else {
                ssq += (absxi / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// `x <- alpha * x`.
pub fn scal(device: &Device, alpha: f64, x: &mut [f64]) {
    let n = x.len() as u64;
    device.record(KernelCost::new(
        KernelCost::f64_bytes(n),
        KernelCost::f64_bytes(n),
        n,
        1,
    ));
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `y <- x` (copy), recorded as a pure streaming kernel.
pub fn copy(device: &Device, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    let n = x.len() as u64;
    device.record(KernelCost::new(
        KernelCost::f64_bytes(n),
        KernelCost::f64_bytes(n),
        0,
        1,
    ));
    y.copy_from_slice(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn dot_matches_naive() {
        let d = device();
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..37).map(|i| 1.0 - i as f64).collect();
        let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&d, &x, &y) - expect).abs() < 1e-10);
    }

    #[test]
    fn dot_records_reads_and_flops() {
        let d = device();
        let x = vec![1.0; 100];
        let _ = dot(&d, &x, &x);
        let c = d.tracker().snapshot();
        assert_eq!(c.bytes_read, 2 * 100 * 8);
        assert_eq!(c.flops, 200);
    }

    #[test]
    fn axpy_updates_in_place() {
        let d = device();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(&d, 2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn nrm2_handles_extreme_scales() {
        let d = device();
        assert_eq!(nrm2(&d, &[]), 0.0);
        assert_eq!(nrm2(&d, &[3.0, 4.0]), 5.0);
        // Values whose squares would overflow a f64.
        let big = vec![1e200, 1e200];
        assert!((nrm2_unrecorded(&big) - 1e200 * std::f64::consts::SQRT_2).abs() / 1e200 < 1e-12);
        // Values whose squares would underflow to zero.
        let small = vec![1e-200, 1e-200];
        assert!(nrm2_unrecorded(&small) > 0.0);
    }

    #[test]
    fn scal_scales_and_copy_copies() {
        let d = device();
        let mut x = vec![1.0, -2.0, 4.0];
        scal(&d, -0.5, &mut x);
        assert_eq!(x, vec![-0.5, 1.0, -2.0]);
        let mut y = vec![0.0; 3];
        copy(&d, &x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let d = device();
        let _ = dot(&d, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn unrolled_dot_matches_for_all_remainders() {
        for len in 0..16 {
            let x: Vec<f64> = (0..len).map(|i| (i + 1) as f64).collect();
            let y: Vec<f64> = (0..len).map(|i| (i as f64) - 3.0).collect();
            let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot_unrecorded(&x, &y) - expect).abs() < 1e-12, "len {len}");
        }
    }
}
