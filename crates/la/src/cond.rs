//! Construction of test matrices with a prescribed condition number.
//!
//! Figure 8 of the paper sweeps `κ(A)` from 1 to 10²⁰ on a `2¹⁷ x 16` problem and shows
//! that the normal equations collapse beyond `κ ≈ 10⁸` while QR and the sketch-and-solve
//! solvers keep producing accurate solutions.  To run that experiment we need matrices
//! whose condition number we control exactly: `A = Q₁ Σ Q₂ᵀ` with orthonormal `Q₁`,
//! orthogonal `Q₂`, and geometrically decaying singular values from `1` to `1/κ`.

use crate::blas3::gemm_op;
use crate::error::LaError;
use crate::matrix::{Layout, Matrix, Op};
use crate::qr::economy_qr;
use sketch_gpu_sim::Device;

/// A random matrix with orthonormal columns, obtained as the thin Q factor of a random
/// Gaussian matrix.
pub fn orthonormal_columns(
    device: &Device,
    nrows: usize,
    ncols: usize,
    seed: u64,
) -> Result<Matrix, LaError> {
    let g = Matrix::random_gaussian(nrows, ncols, Layout::ColMajor, seed, 0);
    let (q, _) = economy_qr(device, &g)?;
    Ok(q)
}

/// Geometrically decaying singular values from `1` down to `1/kappa`.
pub fn geometric_singular_values(n: usize, kappa: f64) -> Vec<f64> {
    assert!(kappa >= 1.0, "condition number must be >= 1");
    assert!(n > 0, "need at least one singular value");
    if n == 1 {
        return vec![1.0];
    }
    let ratio = (1.0 / kappa).powf(1.0 / (n as f64 - 1.0));
    (0..n).map(|i| ratio.powi(i as i32)).collect()
}

/// An `m x n` matrix of exact rank `k`, with singular values `k, k−1, …, 1` followed
/// by zeros — the canonical test input for the low-rank approximation routines.
pub fn rank_k_matrix(
    device: &Device,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
) -> Result<Matrix, LaError> {
    assert!(k <= n, "rank {k} exceeds the column count {n}");
    let mut sigma = vec![0.0; n];
    for (i, s) in sigma.iter_mut().take(k).enumerate() {
        *s = (k - i) as f64;
    }
    matrix_with_singular_values(device, m, n, &sigma, seed)
}

/// Build an `m x n` matrix with exactly the given singular values (up to roundoff):
/// `A = Q₁ diag(σ) Q₂ᵀ`.
pub fn matrix_with_singular_values(
    device: &Device,
    m: usize,
    n: usize,
    sigma: &[f64],
    seed: u64,
) -> Result<Matrix, LaError> {
    assert_eq!(sigma.len(), n, "need one singular value per column");
    let q1 = orthonormal_columns(device, m, n, seed)?;
    let q2 = orthonormal_columns(device, n, n, seed ^ 0x9E37_79B9_7F4A_7C15)?;

    // Scale the columns of Q1 by the singular values, then multiply by Q2ᵀ.
    let mut scaled = q1;
    for (j, &s) in sigma.iter().enumerate() {
        for v in scaled.col_mut(j).expect("col-major").iter_mut() {
            *v *= s;
        }
    }
    gemm_op(device, 1.0, Op::NoTrans, &scaled, Op::Trans, &q2, 0.0, None)
}

/// Build an `m x n` matrix with condition number `kappa` (geometric singular value decay).
pub fn matrix_with_cond(
    device: &Device,
    m: usize,
    n: usize,
    kappa: f64,
    seed: u64,
) -> Result<Matrix, LaError> {
    let sigma = geometric_singular_values(n, kappa);
    matrix_with_singular_values(device, m, n, &sigma, seed)
}

/// Estimate the largest singular value of `A` by power iteration on `AᵀA`.
pub fn power_sigma_max(device: &Device, a: &Matrix, iterations: usize, seed: u64) -> f64 {
    use crate::blas1::nrm2_unrecorded;
    use crate::blas2::gemv;

    let n = a.ncols();
    if n == 0 || a.nrows() == 0 {
        return 0.0;
    }
    let mut v = sketch_rng::fill::gaussian_vec(seed, 0, n);
    let norm = nrm2_unrecorded(&v);
    if norm == 0.0 {
        return 0.0;
    }
    for vi in v.iter_mut() {
        *vi /= norm;
    }
    let mut sigma = 0.0;
    for _ in 0..iterations {
        let av = gemv(device, 1.0, Op::NoTrans, a, &v, 0.0, None).expect("shape checked");
        let atav = gemv(device, 1.0, Op::Trans, a, &av, 0.0, None).expect("shape checked");
        let norm = nrm2_unrecorded(&atav);
        if norm == 0.0 {
            return 0.0;
        }
        sigma = nrm2_unrecorded(&av);
        v = atav;
        for vi in v.iter_mut() {
            *vi /= norm;
        }
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas2::gemv;
    use crate::norms::vec_norm2;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn geometric_values_span_kappa() {
        let s = geometric_singular_values(5, 1e4);
        assert!((s[0] - 1.0).abs() < 1e-15);
        assert!((s[4] - 1e-4).abs() < 1e-12);
        for w in s.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(geometric_singular_values(1, 10.0), vec![1.0]);
        let flat = geometric_singular_values(4, 1.0);
        assert!(flat.iter().all(|&x| (x - 1.0).abs() < 1e-15));
    }

    #[test]
    #[should_panic(expected = "condition number must be >= 1")]
    fn kappa_below_one_is_rejected() {
        geometric_singular_values(3, 0.5);
    }

    #[test]
    fn orthonormal_columns_are_orthonormal() {
        let d = device();
        let q = orthonormal_columns(&d, 30, 6, 1).unwrap();
        let qtq = gemm_op(&d, 1.0, Op::Trans, &q, Op::NoTrans, &q, 0.0, None).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-10);
    }

    #[test]
    fn constructed_matrix_maps_right_singular_vectors_to_scaled_left_vectors() {
        let d = device();
        let sigma = vec![1.0, 0.5, 0.01];
        let a = matrix_with_singular_values(&d, 40, 3, &sigma, 7).unwrap();
        // The singular values of A are exactly sigma: check ||A|| via power iteration.
        let est = power_sigma_max(&d, &a, 50, 3);
        assert!((est - 1.0).abs() < 1e-6, "sigma_max estimate {est}");
    }

    #[test]
    fn matrix_with_cond_is_well_scaled() {
        let d = device();
        let a = matrix_with_cond(&d, 64, 8, 1e6, 3).unwrap();
        assert_eq!(a.nrows(), 64);
        assert_eq!(a.ncols(), 8);
        let smax = power_sigma_max(&d, &a, 60, 11);
        assert!((smax - 1.0).abs() < 1e-4, "largest singular value {smax}");
        // The smallest singular value must make some direction nearly invisible:
        // min over unit basis images is an upper bound on sigma_min * sqrt factor.
        let mut min_image = f64::INFINITY;
        for j in 0..8 {
            let mut e = vec![0.0; 8];
            e[j] = 1.0;
            let img = gemv(&d, 1.0, Op::NoTrans, &a, &e, 0.0, None).unwrap();
            min_image = min_image.min(vec_norm2(&img));
        }
        assert!(min_image < 1e-1);
    }

    #[test]
    fn power_iteration_on_identity_returns_one() {
        let d = device();
        let est = power_sigma_max(&d, &Matrix::identity(6), 20, 5);
        assert!((est - 1.0).abs() < 1e-10);
    }

    #[test]
    fn power_iteration_handles_zero_matrix() {
        let d = device();
        assert_eq!(power_sigma_max(&d, &Matrix::zeros(5, 3), 10, 1), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_condition_number_is_realised(kappa_exp in 0u32..8, seed in 0u64..100) {
            let d = device();
            let kappa = 10f64.powi(kappa_exp as i32);
            let n = 4;
            let a = matrix_with_cond(&d, 32, n, kappa, seed).unwrap();
            // sigma_max should be ~1 regardless of kappa.
            let smax = power_sigma_max(&d, &a, 80, seed + 1);
            prop_assert!((smax - 1.0).abs() < 1e-3);
        }
    }
}
