//! Norms and residual helpers used throughout the evaluation.
//!
//! Figures 6–8 of the paper report the relative least squares residual
//! `||b - A x||₂ / ||b||₂`; [`relative_residual`] computes exactly that quantity.

use crate::blas1::nrm2_unrecorded;
use crate::blas2::gemv;
use crate::error::LaError;
use crate::matrix::{Matrix, Op};
use sketch_gpu_sim::{Device, KernelCost};

/// Euclidean norm of a vector (no device accounting; convenience wrapper).
#[inline]
pub fn vec_norm2(x: &[f64]) -> f64 {
    nrm2_unrecorded(x)
}

/// Frobenius norm of a matrix, recorded as one streaming pass.
pub fn frobenius(device: &Device, a: &Matrix) -> f64 {
    let n = a.len() as u64;
    device.record(KernelCost::new(KernelCost::f64_bytes(n), 0, 2 * n, 1));
    nrm2_unrecorded(a.as_slice())
}

/// Euclidean norms of every column of `a`.
pub fn column_norms(device: &Device, a: &Matrix) -> Vec<f64> {
    let n = a.len() as u64;
    device.record(KernelCost::new(KernelCost::f64_bytes(n), 0, 2 * n, 1));
    (0..a.ncols())
        .map(|j| nrm2_unrecorded(&a.col_to_vec(j)))
        .collect()
}

/// Relative least squares residual `||b - A x||₂ / ||b||₂`.
pub fn relative_residual(
    device: &Device,
    a: &Matrix,
    x: &[f64],
    b: &[f64],
) -> Result<f64, LaError> {
    let ax = gemv(device, 1.0, Op::NoTrans, a, x, 0.0, None)?;
    let mut r = b.to_vec();
    for (ri, axi) in r.iter_mut().zip(ax.iter()) {
        *ri -= axi;
    }
    let nb = nrm2_unrecorded(b);
    if nb == 0.0 {
        return Ok(nrm2_unrecorded(&r));
    }
    Ok(nrm2_unrecorded(&r) / nb)
}

/// Relative Frobenius distance `‖A − B‖_F / ‖A‖_F` (absolute when `‖A‖_F = 0`).
///
/// The standard accuracy metric of the low-rank benchmarks and tests.
pub fn frobenius_rel_diff(device: &Device, a: &Matrix, b: &Matrix) -> Result<f64, LaError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(crate::error::dim_err(
            "frobenius_rel_diff",
            format!("{}x{} vs {}x{}", a.nrows(), a.ncols(), b.nrows(), b.ncols()),
        ));
    }
    let diff = Matrix::from_fn(a.nrows(), a.ncols(), a.layout(), |i, j| {
        a.get(i, j) - b.get(i, j)
    });
    let na = frobenius(device, a);
    let nd = frobenius(device, &diff);
    Ok(if na == 0.0 { nd } else { nd / na })
}

/// Maximum absolute entry of a vector difference (used by accuracy comparisons).
pub fn max_abs_diff_vec(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;

    fn device() -> Device {
        Device::unlimited()
    }

    #[test]
    fn frobenius_of_identity() {
        let d = device();
        assert!((frobenius(&d, &Matrix::identity(9)) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn column_norms_of_known_matrix() {
        let d = device();
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 2.0]]);
        let norms = column_norms(&d, &a);
        assert!((norms[0] - 5.0).abs() < 1e-14);
        assert!((norms[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn residual_is_zero_for_exact_solution() {
        let d = device();
        let a = Matrix::random_gaussian(20, 4, Layout::ColMajor, 1, 0);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let b = gemv(&d, 1.0, Op::NoTrans, &a, &x, 0.0, None).unwrap();
        let r = relative_residual(&d, &a, &x, &b).unwrap();
        assert!(r < 1e-13);
    }

    #[test]
    fn residual_is_one_for_zero_solution() {
        let d = device();
        let a = Matrix::random_gaussian(10, 3, Layout::ColMajor, 2, 0);
        let b = vec![1.0; 10];
        let r = relative_residual(&d, &a, &[0.0; 3], &b).unwrap();
        assert!((r - 1.0).abs() < 1e-14);
    }

    #[test]
    fn residual_with_zero_rhs_returns_absolute_norm() {
        let d = device();
        let a = Matrix::identity(3);
        let r = relative_residual(&d, &a, &[1.0, 0.0, 0.0], &[0.0; 3]).unwrap();
        assert!((r - 1.0).abs() < 1e-14);
    }

    #[test]
    fn residual_rejects_dimension_mismatch() {
        let d = device();
        let a = Matrix::identity(3);
        assert!(relative_residual(&d, &a, &[1.0, 2.0], &[0.0; 3]).is_err());
    }

    #[test]
    fn frobenius_rel_diff_measures_relative_distance() {
        let d = device();
        let a = Matrix::identity(3);
        assert_eq!(frobenius_rel_diff(&d, &a, &a).unwrap(), 0.0);
        let b = Matrix::zeros(3, 3);
        assert!((frobenius_rel_diff(&d, &a, &b).unwrap() - 1.0).abs() < 1e-15);
        // Zero reference falls back to the absolute norm.
        assert!((frobenius_rel_diff(&d, &b, &a).unwrap() - 3f64.sqrt()).abs() < 1e-15);
        assert!(frobenius_rel_diff(&d, &a, &Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn vec_helpers() {
        assert_eq!(vec_norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(max_abs_diff_vec(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
    }
}
