//! Level-3 BLAS: matrix-matrix kernels (GEMM, SYRK, TRSM) with device cost accounting.
//!
//! These are the cuBLAS substitutes.  GEMM, SYRK and both TRSM variants all ride the
//! cache-blocked packing/microkernel infrastructure in [`crate::gebp`]: operands are
//! repacked into L1/L2-sized panels and driven through a register-tiled inner kernel,
//! while every output element keeps a single ascending-`k` accumulator chain so the
//! computed bits are a pure function of problem shape (see the `gebp` module docs for
//! the full contract).  SYRK exploits symmetry exactly the way the paper uses it for
//! the Gram matrix `AᵀA` (Section 6).  The paper notes that cuBLAS SyRK is slower than
//! GeMM in practice and therefore times the Gram matrix with GeMM; both are provided so
//! the ablation bench can reproduce that comparison.
//!
//! The pre-blocking per-element kernel survives as [`gemm_naive_into`]: it is the
//! baseline the `fig_kernels` regression harness times the blocked kernel against, and
//! the independent oracle the blocked-vs-naive proptests compare values with.

use crate::blas1::dot_unrecorded;
use crate::blas2::Triangle;
use crate::error::{dim_err, LaError};
use crate::gebp::{self, BlockSizes};
use crate::matrix::{Layout, Matrix, MatrixViewMut, Op};
use rayon::prelude::*;
use sketch_gpu_sim::{Device, KernelCost};

/// Block size (rows/columns) of the blocked triangular solves.  A fixed constant — not
/// a tunable — so the trailing-update order stays a pure function of the problem shape.
const TRSM_NB: usize = 64;

/// Number of right-hand-side vectors one parallel TRSM task solves together (the packed
/// triangle row is reused across the group while it is hot in cache).
const TRSM_GROUP: usize = 4;

/// Pack `op(A)` so that its rows are contiguous (row-major copy of the logical operand).
fn pack_rows(a: &Matrix, op: Op) -> Vec<f64> {
    let m = op.rows(a);
    let k = op.cols(a);
    let mut out = vec![0.0; m * k];
    match (op, a.layout()) {
        (Op::NoTrans, Layout::RowMajor) | (Op::Trans, Layout::ColMajor) => {
            out.copy_from_slice(a.as_slice());
        }
        _ => {
            out.par_chunks_mut(k.max(1))
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = op.get(a, i, j);
                    }
                });
        }
    }
    out
}

/// Pack `op(B)` so that its columns are contiguous (column-major copy of the operand).
fn pack_cols(b: &Matrix, op: Op) -> Vec<f64> {
    let k = op.rows(b);
    let n = op.cols(b);
    let mut out = vec![0.0; k * n];
    match (op, b.layout()) {
        (Op::NoTrans, Layout::ColMajor) | (Op::Trans, Layout::RowMajor) => {
            out.copy_from_slice(b.as_slice());
        }
        _ => {
            out.par_chunks_mut(k.max(1))
                .enumerate()
                .for_each(|(j, col)| {
                    for (i, slot) in col.iter_mut().enumerate() {
                        *slot = op.get(b, i, j);
                    }
                });
        }
    }
    out
}

/// Validate GEMM dimensions and return `(m, k, n)`.
fn gemm_dims(
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    c: Option<&Matrix>,
    out: &MatrixViewMut<'_>,
) -> Result<(usize, usize, usize), LaError> {
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    let kb = op_b.rows(b);
    let n = op_b.cols(b);
    if k != kb {
        return Err(dim_err(
            "gemm",
            format!("op(A) is {m}x{k} but op(B) is {kb}x{n}"),
        ));
    }
    if let Some(c0) = c {
        if c0.nrows() != m || c0.ncols() != n {
            return Err(dim_err(
                "gemm",
                format!("C is {}x{} but product is {m}x{n}", c0.nrows(), c0.ncols()),
            ));
        }
    }
    if out.nrows() != m || out.ncols() != n {
        return Err(dim_err(
            "gemm",
            format!(
                "output buffer is {}x{} but product is {m}x{n}",
                out.nrows(),
                out.ncols()
            ),
        ));
    }
    Ok((m, k, n))
}

/// Record the modelled GEMM cost (`2mnk` flops, packed-operand traffic).
fn record_gemm_cost(device: &Device, m: usize, k: usize, n: usize, read_c: bool) {
    let (m64, n64, k64) = (m as u64, n as u64, k as u64);
    let read_c = if read_c { m64 * n64 } else { 0 };
    device.record(KernelCost::new(
        KernelCost::f64_bytes(m64 * k64 + k64 * n64 + read_c),
        KernelCost::f64_bytes(m64 * n64),
        2 * m64 * n64 * k64,
        1,
    ));
}

/// General matrix-matrix product `C <- alpha * op(A) * op(B) + beta * C`.
///
/// The result is returned as a new column-major matrix; `c` supplies the `beta`-scaled
/// initial value when provided.  This is the thin allocating wrapper around
/// [`gemm_into`], which buffer-reusing callers invoke directly.
// The argument list deliberately mirrors BLAS DGEMM's parameter order.
#[allow(clippy::too_many_arguments)]
pub fn gemm_op(
    device: &Device,
    alpha: f64,
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
) -> Result<Matrix, LaError> {
    let m = op_a.rows(a);
    let n = op_b.cols(b);
    let mut out = Matrix::zeros(m, n);
    gemm_into(
        device,
        alpha,
        op_a,
        a,
        op_b,
        b,
        beta,
        c,
        &mut out.view_mut(),
    )?;
    Ok(out)
}

/// Buffer-reusing GEMM: `out <- alpha * op(A) * op(B) + beta * C`, written into a
/// caller-owned buffer of either layout.  Runs the cache-blocked GEBP kernel with the
/// default [`BlockSizes`]; produces bit-for-bit the same values in either output layout
/// (each element's ascending-`k` accumulator chain is independent of where it is
/// stored) and records the same cost as [`gemm_op`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    device: &Device,
    alpha: f64,
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
    out: &mut MatrixViewMut<'_>,
) -> Result<(), LaError> {
    gemm_into_with_blocks(
        device,
        alpha,
        op_a,
        a,
        op_b,
        b,
        beta,
        c,
        out,
        BlockSizes::default(),
    )
}

/// [`gemm_into`] with explicit cache [`BlockSizes`].
///
/// Exposed so the kernel harness and the determinism proptests can pin that block-size
/// tuning never changes the computed bits; production callers use [`gemm_into`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_with_blocks(
    device: &Device,
    alpha: f64,
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
    out: &mut MatrixViewMut<'_>,
    blocks: BlockSizes,
) -> Result<(), LaError> {
    let (m, k, n) = gemm_dims(op_a, a, op_b, b, c, out)?;

    let acc = gebp::blocked_sums(op_a, a, op_b, b, blocks, false);
    let pn = gebp::padded(n.max(1), gebp::NR);
    let read_beta = beta != 0.0 && c.is_some();
    let element = |i: usize, j: usize| {
        let mut value = alpha * acc[gebp::acc_index(pn, i, j)];
        if read_beta {
            if let Some(c0) = c {
                value += beta * c0.get(i, j);
            }
        }
        value
    };
    match out.layout() {
        Layout::ColMajor => {
            out.as_mut_slice()
                .par_chunks_mut(m.max(1))
                .enumerate()
                .for_each(|(j, col)| {
                    for (i, slot) in col.iter_mut().enumerate() {
                        *slot = element(i, j);
                    }
                });
        }
        Layout::RowMajor => {
            out.as_mut_slice()
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = element(i, j);
                    }
                });
        }
    }

    record_gemm_cost(device, m, k, n, read_beta);
    Ok(())
}

/// The pre-blocking per-element GEMM: every output element is one packed dot product.
///
/// Retained (not routed to by anything on the hot path) as the measured baseline for
/// the `fig_kernels` speed-regression harness and as the independent oracle for the
/// blocked-vs-naive value proptests.  Records the same modelled cost as [`gemm_into`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_naive_into(
    device: &Device,
    alpha: f64,
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
    out: &mut MatrixViewMut<'_>,
) -> Result<(), LaError> {
    let (m, k, n) = gemm_dims(op_a, a, op_b, b, c, out)?;

    let packed_a = pack_rows(a, op_a);
    let packed_b = pack_cols(b, op_b);

    let element = |i: usize, j: usize| {
        let arow = &packed_a[i * k..(i + 1) * k];
        let bcol = &packed_b[j * k..(j + 1) * k];
        let mut value = alpha * dot_unrecorded(arow, bcol);
        if beta != 0.0 {
            if let Some(c0) = c {
                value += beta * c0.get(i, j);
            }
        }
        value
    };
    match out.layout() {
        Layout::ColMajor => {
            out.as_mut_slice()
                .par_chunks_mut(m.max(1))
                .enumerate()
                .for_each(|(j, col)| {
                    for (i, slot) in col.iter_mut().enumerate() {
                        *slot = element(i, j);
                    }
                });
        }
        Layout::RowMajor => {
            out.as_mut_slice()
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = element(i, j);
                    }
                });
        }
    }

    record_gemm_cost(device, m, k, n, beta != 0.0 && c.is_some());
    Ok(())
}

/// Convenience GEMM without transposes: `C = alpha * A * B + beta * C`.
pub fn gemm(
    device: &Device,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
) -> Result<Matrix, LaError> {
    gemm_op(device, alpha, Op::NoTrans, a, Op::NoTrans, b, beta, c)
}

/// Symmetric rank-k update computing the Gram matrix `G = AᵀA` (column-major result).
///
/// Runs the same blocked GEBP sweep as [`gemm_op`] with `(Op::Trans, Op::NoTrans)`, but
/// skips every register tile strictly below the diagonal and mirrors the upper triangle
/// into the lower one inside the parallel epilogue — which halves the executed flops,
/// the SyRK vs GeMM trade-off discussed in Section 6.  Because the upper-triangle
/// elements run the identical ascending-`k` chains, the result is bitwise equal to
/// [`gram_gemm`].
pub fn syrk_gram(device: &Device, a: &Matrix) -> Matrix {
    let d = a.nrows();
    let n = a.ncols();
    let acc = gebp::blocked_sums(Op::Trans, a, Op::NoTrans, a, BlockSizes::default(), true);
    let pn = gebp::padded(n.max(1), gebp::NR);

    let mut g = Matrix::zeros(n, n);
    g.as_mut_slice()
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(j, col)| {
            // Upper part straight from the accumulators; lower part mirrored from the
            // transposed index in the same pass (the buffer is immutable here, so both
            // triangles read the already-finished sums).
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = if i <= j {
                    acc[gebp::acc_index(pn, i, j)]
                } else {
                    acc[gebp::acc_index(pn, j, i)]
                };
            }
        });

    let (d64, n64) = (d as u64, n as u64);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(d64 * n64),
        KernelCost::f64_bytes(n64 * n64),
        d64 * n64 * (n64 + 1),
        1,
    ));
    g
}

/// Gram matrix via plain GEMM (`G = AᵀA` computed with full 2dn² flops), matching how
/// the paper actually times the normal equations ("SyRK's performance is much worse in
/// practice than GeMM").
pub fn gram_gemm(device: &Device, a: &Matrix) -> Result<Matrix, LaError> {
    gemm_op(device, 1.0, Op::Trans, a, Op::NoTrans, a, 0.0, None)
}

/// Pack `op(T)` into a contiguous row-major `n x n` buffer so the solves stream each
/// triangle row with unit stride.
fn pack_triangle(t: &Matrix, op_t: Op) -> Vec<f64> {
    let n = t.nrows();
    let mut tp = vec![0.0; n * n];
    tp.par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = op_t.get(t, i, j);
            }
        });
    tp
}

/// Blocked triangular solve applied to every length-`n` vector stored contiguously in
/// `chunk`, reading the packed row-major triangle `tp`.
///
/// Left-looking over [`TRSM_NB`] diagonal blocks with GEMM-style trailing updates.  Per
/// element the subtraction order is: all already-solved `j` outside the current block
/// in ascending order (trailing blocks ascend, and their `j` ranges concatenate into
/// one ascending run), then the in-block `j` ascending — for the `Lower` direction that
/// is exactly the naive ascending-`j` order.  `TRSM_NB` is a constant, so the order is
/// a pure function of `n`.
fn solve_vectors_blocked(tp: &[f64], n: usize, effective: Triangle, chunk: &mut [f64]) {
    if n == 0 {
        return;
    }
    let mut vecs: Vec<&mut [f64]> = chunk.chunks_mut(n).collect();
    let nblocks = n.div_ceil(TRSM_NB);
    match effective {
        Triangle::Upper => {
            for bi in (0..nblocks).rev() {
                let i0 = bi * TRSM_NB;
                let i1 = (i0 + TRSM_NB).min(n);
                // Trailing update x[i0..i1] -= T[i0..i1, i1..n] · x[i1..n], blocked
                // over j so one TRSM_NB-wide strip of T stays hot per pass.
                let mut j0 = i1;
                while j0 < n {
                    let j1 = (j0 + TRSM_NB).min(n);
                    for i in i0..i1 {
                        let trow = &tp[i * n..(i + 1) * n];
                        for vec in vecs.iter_mut() {
                            let mut acc = vec[i];
                            for j in j0..j1 {
                                acc -= trow[j] * vec[j];
                            }
                            vec[i] = acc;
                        }
                    }
                    j0 = j1;
                }
                // Diagonal block back-substitution.
                for i in (i0..i1).rev() {
                    let trow = &tp[i * n..(i + 1) * n];
                    let diag = trow[i];
                    for vec in vecs.iter_mut() {
                        let mut acc = vec[i];
                        for j in i + 1..i1 {
                            acc -= trow[j] * vec[j];
                        }
                        vec[i] = acc / diag;
                    }
                }
            }
        }
        Triangle::Lower => {
            for bi in 0..nblocks {
                let i0 = bi * TRSM_NB;
                let i1 = (i0 + TRSM_NB).min(n);
                let mut j0 = 0;
                while j0 < i0 {
                    let j1 = (j0 + TRSM_NB).min(i0);
                    for i in i0..i1 {
                        let trow = &tp[i * n..(i + 1) * n];
                        for vec in vecs.iter_mut() {
                            let mut acc = vec[i];
                            for j in j0..j1 {
                                acc -= trow[j] * vec[j];
                            }
                            vec[i] = acc;
                        }
                    }
                    j0 = j1;
                }
                // Diagonal block forward-substitution.
                for i in i0..i1 {
                    let trow = &tp[i * n..(i + 1) * n];
                    let diag = trow[i];
                    for vec in vecs.iter_mut() {
                        let mut acc = vec[i];
                        for j in i0..i {
                            acc -= trow[j] * vec[j];
                        }
                        vec[i] = acc / diag;
                    }
                }
            }
        }
    }
}

/// Triangular solve with multiple right-hand sides: solves `op(T) X = B` (left side).
pub fn trsm(
    device: &Device,
    triangle: Triangle,
    op_t: Op,
    t: &Matrix,
    b: &Matrix,
) -> Result<Matrix, LaError> {
    let n = t.nrows();
    if t.ncols() != n {
        return Err(dim_err("trsm", format!("T is {}x{}", t.nrows(), t.ncols())));
    }
    if b.nrows() != n {
        return Err(dim_err(
            "trsm",
            format!("T is {n}x{n} but B is {}x{}", b.nrows(), b.ncols()),
        ));
    }
    let nrhs = b.ncols();

    let effective = match (triangle, op_t) {
        (Triangle::Upper, Op::NoTrans) | (Triangle::Lower, Op::Trans) => Triangle::Upper,
        (Triangle::Lower, Op::NoTrans) | (Triangle::Upper, Op::Trans) => Triangle::Lower,
    };
    // Validate the diagonal once up front.
    for i in 0..n {
        if op_t.get(t, i, i) == 0.0 {
            return Err(LaError::SingularTriangular { index: i });
        }
    }

    let tp = pack_triangle(t, op_t);
    let mut x = Matrix::zeros(n, nrhs);
    {
        let data = x.as_mut_slice();
        // Column-major X: each parallel task owns TRSM_GROUP whole columns and solves
        // them together against the packed triangle (columns are independent, so the
        // grouping is a cache choice, not a numeric one).
        data.par_chunks_mut((n * TRSM_GROUP).max(1))
            .enumerate()
            .for_each(|(gi, chunk)| {
                let ncols = chunk.len() / n.max(1);
                for (c, col) in chunk.chunks_mut(n.max(1)).enumerate() {
                    let j = gi * TRSM_GROUP + c;
                    for (i, slot) in col.iter_mut().enumerate() {
                        *slot = b.get(i, j);
                    }
                }
                debug_assert!(ncols <= TRSM_GROUP);
                solve_vectors_blocked(&tp, n, effective, chunk);
            });
    }

    let (n64, r64) = (n as u64, nrhs as u64);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(n64 * (n64 + 1) / 2 + n64 * r64),
        KernelCost::f64_bytes(n64 * r64),
        n64 * n64 * r64,
        1,
    ));
    Ok(x)
}

/// Right-side triangular solve: solves `X op(T) = B`, i.e. `X = B op(T)^{-1}`.
///
/// Used by rand_cholQR to precondition `A₀ = A R₀^{-1}` (Algorithm 4, step 3).
/// `X op(T) = B  <=>  op(T)ᵀ Xᵀ = Bᵀ`, so the rows of `X` are solved with the flipped
/// operand — directly inside the row-major result buffer, one flat allocation with
/// `par_chunks_mut` over row groups (no per-row `Vec`s, no serial copy-out).
pub fn trsm_right(
    device: &Device,
    triangle: Triangle,
    op_t: Op,
    t: &Matrix,
    b: &Matrix,
) -> Result<Matrix, LaError> {
    let n = t.nrows();
    if t.ncols() != n {
        return Err(dim_err(
            "trsm_right",
            format!("T is {}x{}", t.nrows(), t.ncols()),
        ));
    }
    if b.ncols() != n {
        return Err(dim_err(
            "trsm_right",
            format!("T is {n}x{n} but B is {}x{}", b.nrows(), b.ncols()),
        ));
    }
    let flipped_op = match op_t {
        Op::NoTrans => Op::Trans,
        Op::Trans => Op::NoTrans,
    };
    let effective = match (triangle, flipped_op) {
        (Triangle::Upper, Op::NoTrans) | (Triangle::Lower, Op::Trans) => Triangle::Upper,
        (Triangle::Lower, Op::NoTrans) | (Triangle::Upper, Op::Trans) => Triangle::Lower,
    };
    for i in 0..n {
        if t.get(i, i) == 0.0 {
            return Err(LaError::SingularTriangular { index: i });
        }
    }

    let m = b.nrows();
    let tp = pack_triangle(t, flipped_op);
    let mut x = Matrix::zeros_with_layout(m, n, Layout::RowMajor);
    {
        let data = x.as_mut_slice();
        // Row-major X: rows are contiguous, so each parallel task owns TRSM_GROUP
        // whole rows of the result and solves them in place.
        data.par_chunks_mut((n * TRSM_GROUP).max(1))
            .enumerate()
            .for_each(|(gi, chunk)| {
                for (c, row) in chunk.chunks_mut(n.max(1)).enumerate() {
                    let r = gi * TRSM_GROUP + c;
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = b.get(r, j);
                    }
                }
                solve_vectors_blocked(&tp, n, effective, chunk);
            });
    }

    let (n64, m64) = (n as u64, m as u64);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(n64 * (n64 + 1) / 2 + m64 * n64),
        KernelCost::f64_bytes(m64 * n64),
        m64 * n64 * n64,
        1,
    ));
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::unlimited()
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "matrices differ by {}",
            a.max_abs_diff(b).unwrap()
        );
    }

    #[test]
    fn gemm_small_known_product() {
        let d = device();
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&d, 1.0, &a, &b, 0.0, None).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert_close(&c, &expect, 1e-12);
    }

    #[test]
    fn gemm_identity_is_neutral() {
        let d = device();
        let a = Matrix::random_gaussian(7, 5, Layout::ColMajor, 1, 0);
        let c = gemm(&d, 1.0, &a, &Matrix::identity(5), 0.0, None).unwrap();
        assert_close(&c, &a.to_layout(&d, Layout::ColMajor), 1e-12);
    }

    #[test]
    fn gemm_respects_alpha_beta_and_c() {
        let d = device();
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let c0 = Matrix::from_fn(3, 3, Layout::ColMajor, |i, j| (i + j) as f64);
        let c = gemm(&d, 2.0, &a, &b, 0.5, Some(&c0)).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 2.0 } else { 0.0 } + 0.5 * (i + j) as f64;
                assert!((c.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_transpose_combinations_agree_with_explicit_transpose() {
        let d = device();
        let a = Matrix::random_gaussian(4, 6, Layout::RowMajor, 2, 0);
        let b = Matrix::random_gaussian(4, 3, Layout::ColMajor, 2, 1);
        // AᵀB via op flags vs via materialised transpose.
        let via_op = gemm_op(&d, 1.0, Op::Trans, &a, Op::NoTrans, &b, 0.0, None).unwrap();
        let at = a.transpose(&d);
        let via_explicit = gemm(&d, 1.0, &at, &b, 0.0, None).unwrap();
        assert_close(&via_op, &via_explicit, 1e-12);

        // ABᵀ with A 4x6, B 3x6.
        let b2 = Matrix::random_gaussian(3, 6, Layout::RowMajor, 5, 0);
        let via_op2 = gemm_op(&d, 1.0, Op::NoTrans, &a, Op::Trans, &b2, 0.0, None).unwrap();
        let b2t = b2.transpose(&d);
        let via_explicit2 = gemm(&d, 1.0, &a, &b2t, 0.0, None).unwrap();
        assert_close(&via_op2, &via_explicit2, 1e-12);
    }

    #[test]
    fn gemm_into_is_bit_identical_in_both_output_layouts() {
        let d = device();
        let a = Matrix::random_gaussian(5, 7, Layout::RowMajor, 1, 0);
        let b = Matrix::random_gaussian(7, 4, Layout::ColMajor, 1, 1);
        let reference = gemm(&d, 1.0, &a, &b, 0.0, None).unwrap();
        for layout in [Layout::ColMajor, Layout::RowMajor] {
            // Start from a dirty buffer: every element must be overwritten.
            let mut out = Matrix::from_fn(5, 4, layout, |_, _| f64::NAN);
            gemm_into(
                &d,
                1.0,
                Op::NoTrans,
                &a,
                Op::NoTrans,
                &b,
                0.0,
                None,
                &mut out.view_mut(),
            )
            .unwrap();
            for i in 0..5 {
                for j in 0..4 {
                    assert!(
                        out.get(i, j).to_bits() == reference.get(i, j).to_bits(),
                        "({i},{j}) differs in {layout:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_gemm_bits_do_not_depend_on_block_sizes() {
        let d = device();
        let a = Matrix::random_gaussian(21, 33, Layout::RowMajor, 13, 0);
        let b = Matrix::random_gaussian(33, 10, Layout::ColMajor, 13, 1);
        let c0 = Matrix::random_gaussian(21, 10, Layout::ColMajor, 13, 2);
        let run = |blocks: BlockSizes| {
            let mut out = Matrix::zeros(21, 10);
            gemm_into_with_blocks(
                &d,
                1.25,
                Op::NoTrans,
                &a,
                Op::NoTrans,
                &b,
                -0.5,
                Some(&c0),
                &mut out.view_mut(),
                blocks,
            )
            .unwrap();
            out
        };
        let base = run(BlockSizes::default());
        for blocks in [
            BlockSizes { kc: 1, nc: 4 },
            BlockSizes { kc: 5, nc: 8 },
            BlockSizes { kc: 1024, nc: 2048 },
        ] {
            let other = run(blocks);
            for i in 0..21 {
                for j in 0..10 {
                    assert_eq!(
                        base.get(i, j).to_bits(),
                        other.get(i, j).to_bits(),
                        "({i},{j}) changed under {blocks:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_gemm_matches_naive_reference_values() {
        let d = device();
        for (m, k, n, seed) in [
            (1usize, 1usize, 1usize, 1u64),
            (17, 23, 9, 2),
            (64, 8, 40, 3),
        ] {
            let a = Matrix::random_gaussian(m, k, Layout::RowMajor, seed, 0);
            let b = Matrix::random_gaussian(k, n, Layout::ColMajor, seed, 1);
            let mut blocked = Matrix::zeros(m, n);
            let mut naive = Matrix::zeros(m, n);
            gemm_into(
                &d,
                1.0,
                Op::NoTrans,
                &a,
                Op::NoTrans,
                &b,
                0.0,
                None,
                &mut blocked.view_mut(),
            )
            .unwrap();
            gemm_naive_into(
                &d,
                1.0,
                Op::NoTrans,
                &a,
                Op::NoTrans,
                &b,
                0.0,
                None,
                &mut naive.view_mut(),
            )
            .unwrap();
            let scale = naive
                .as_slice()
                .iter()
                .fold(1.0f64, |acc, v| acc.max(v.abs()));
            assert!(
                blocked.max_abs_diff(&naive).unwrap() <= 1e-12 * scale,
                "{m}x{k}x{n} blocked vs naive"
            );
        }
    }

    #[test]
    fn gemm_into_rejects_wrong_output_shape() {
        let d = device();
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut out = Matrix::zeros(2, 3);
        assert!(gemm_into(
            &d,
            1.0,
            Op::NoTrans,
            &a,
            Op::NoTrans,
            &b,
            0.0,
            None,
            &mut out.view_mut()
        )
        .is_err());
    }

    #[test]
    fn gemm_rejects_mismatched_inner_dimensions() {
        let d = device();
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm(&d, 1.0, &a, &b, 0.0, None).is_err());
        let c_wrong = Matrix::zeros(5, 5);
        let b_ok = Matrix::zeros(3, 2);
        assert!(gemm(&d, 1.0, &a, &b_ok, 1.0, Some(&c_wrong)).is_err());
    }

    #[test]
    fn gemm_records_2mnk_flops() {
        let d = device();
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(4, 5);
        let _ = gemm(&d, 1.0, &a, &b, 0.0, None).unwrap();
        assert_eq!(d.tracker().snapshot().flops, 2 * 3 * 4 * 5);
    }

    #[test]
    fn naive_reference_records_the_same_cost_as_blocked() {
        let a = Matrix::zeros(6, 4);
        let b = Matrix::zeros(4, 5);
        let d1 = device();
        let mut out1 = Matrix::zeros(6, 5);
        gemm_into(
            &d1,
            1.0,
            Op::NoTrans,
            &a,
            Op::NoTrans,
            &b,
            0.0,
            None,
            &mut out1.view_mut(),
        )
        .unwrap();
        let d2 = device();
        let mut out2 = Matrix::zeros(6, 5);
        gemm_naive_into(
            &d2,
            1.0,
            Op::NoTrans,
            &a,
            Op::NoTrans,
            &b,
            0.0,
            None,
            &mut out2.view_mut(),
        )
        .unwrap();
        let s1 = d1.tracker().snapshot();
        let s2 = d2.tracker().snapshot();
        assert_eq!(s1.flops, s2.flops);
        assert_eq!(s1.total_bytes(), s2.total_bytes());
    }

    #[test]
    fn syrk_matches_gemm_gram() {
        let d = device();
        let a = Matrix::random_gaussian(50, 8, Layout::ColMajor, 7, 0);
        let g1 = syrk_gram(&d, &a);
        let g2 = gram_gemm(&d, &a).unwrap();
        assert_close(&g1, &g2, 1e-10);
        // Gram matrices are symmetric.
        for i in 0..8 {
            for j in 0..8 {
                assert!((g1.get(i, j) - g1.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn syrk_is_bitwise_equal_to_gemm_gram() {
        // The SYRK path skips sub-diagonal tiles but runs identical ascending-k chains
        // for the upper triangle, and the mirror copies bits exactly.
        let d = device();
        for (rows, cols, seed) in [(50usize, 8usize, 7u64), (33, 13, 8), (8, 21, 9)] {
            let a = Matrix::random_gaussian(rows, cols, Layout::ColMajor, seed, 0);
            let g1 = syrk_gram(&d, &a);
            let g2 = gram_gemm(&d, &a).unwrap();
            for i in 0..cols {
                for j in 0..cols {
                    assert_eq!(
                        g1.get(i, j).to_bits(),
                        g2.get(i, j).to_bits(),
                        "({i},{j}) at {rows}x{cols}"
                    );
                }
            }
        }
    }

    #[test]
    fn syrk_uses_roughly_half_the_flops_of_gemm_gram() {
        let d1 = device();
        let a = Matrix::zeros(100, 10);
        let _ = syrk_gram(&d1, &a);
        let syrk_flops = d1.tracker().snapshot().flops;

        let d2 = device();
        let _ = gram_gemm(&d2, &a).unwrap();
        let gemm_flops = d2.tracker().snapshot().flops;
        assert!(syrk_flops < gemm_flops);
        assert!(syrk_flops * 2 <= gemm_flops + 2 * 100 * 10);
    }

    #[test]
    fn syrk_gram_works_on_row_major_input() {
        let d = device();
        let a_rm = Matrix::random_gaussian(40, 6, Layout::RowMajor, 9, 0);
        let a_cm = a_rm.to_layout(&d, Layout::ColMajor);
        assert_close(&syrk_gram(&d, &a_rm), &syrk_gram(&d, &a_cm), 1e-12);
    }

    #[test]
    fn trsm_left_solves_upper_and_lower_systems() {
        let d = device();
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let b = gemm(&d, 1.0, &u, &x_true, 0.0, None).unwrap();
        let x = trsm(&d, Triangle::Upper, Op::NoTrans, &u, &b).unwrap();
        assert_close(&x, &x_true.to_layout(&d, Layout::ColMajor), 1e-12);

        // Lower case: solve Uᵀ X = B.
        let bt = gemm_op(&d, 1.0, Op::Trans, &u, Op::NoTrans, &x_true, 0.0, None).unwrap();
        let xt = trsm(&d, Triangle::Upper, Op::Trans, &u, &bt).unwrap();
        assert_close(&xt, &x_true.to_layout(&d, Layout::ColMajor), 1e-12);
    }

    #[test]
    fn trsm_left_blocked_matches_unblocked_on_big_triangles() {
        // n > TRSM_NB so the trailing-update path is actually exercised.
        let d = device();
        let n = 150;
        let mut u = Matrix::from_fn(n, n, Layout::ColMajor, |i, j| {
            if i <= j {
                ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5
            } else {
                0.0
            }
        });
        for i in 0..n {
            u.set(i, i, 2.0 + (i % 5) as f64);
        }
        let x_true = Matrix::random_gaussian(n, 7, Layout::ColMajor, 21, 0);
        let b = gemm(&d, 1.0, &u, &x_true, 0.0, None).unwrap();
        let x = trsm(&d, Triangle::Upper, Op::NoTrans, &u, &b).unwrap();
        assert_close(&x, &x_true, 1e-8);

        let bl = gemm_op(&d, 1.0, Op::Trans, &u, Op::NoTrans, &x_true, 0.0, None).unwrap();
        let xl = trsm(&d, Triangle::Upper, Op::Trans, &u, &bl).unwrap();
        assert_close(&xl, &x_true, 1e-8);
    }

    #[test]
    fn trsm_right_solves_post_multiplied_system() {
        let d = device();
        let r = Matrix::from_rows(&[&[2.0, -1.0, 0.5], &[0.0, 1.5, 1.0], &[0.0, 0.0, 3.0]]);
        let x_true = Matrix::random_gaussian(6, 3, Layout::ColMajor, 11, 0);
        // B = X R  => X = B R^{-1}
        let b = gemm(&d, 1.0, &x_true, &r, 0.0, None).unwrap();
        let x = trsm_right(&d, Triangle::Upper, Op::NoTrans, &r, &b).unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn trsm_right_solves_wide_blocked_system() {
        let d = device();
        let n = 130;
        let mut r = Matrix::from_fn(n, n, Layout::ColMajor, |i, j| {
            if i <= j {
                ((i * 13 + j * 7) % 19) as f64 / 19.0 - 0.5
            } else {
                0.0
            }
        });
        for i in 0..n {
            r.set(i, i, 3.0 + (i % 3) as f64);
        }
        let x_true = Matrix::random_gaussian(9, n, Layout::ColMajor, 31, 0);
        let b = gemm(&d, 1.0, &x_true, &r, 0.0, None).unwrap();
        let x = trsm_right(&d, Triangle::Upper, Op::NoTrans, &r, &b).unwrap();
        assert_close(&x, &x_true, 1e-8);
    }

    #[test]
    fn trsm_detects_singular_diagonal() {
        let d = device();
        let mut u = Matrix::identity(3);
        u.set(2, 2, 0.0);
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            trsm(&d, Triangle::Upper, Op::NoTrans, &u, &b),
            Err(LaError::SingularTriangular { index: 2 })
        ));
        let b_right = Matrix::zeros(2, 3);
        assert!(trsm_right(&d, Triangle::Upper, Op::NoTrans, &u, &b_right).is_err());
    }

    #[test]
    fn trsm_rejects_bad_shapes() {
        let d = device();
        let t = Matrix::identity(3);
        assert!(trsm(&d, Triangle::Upper, Op::NoTrans, &t, &Matrix::zeros(2, 2)).is_err());
        assert!(trsm_right(&d, Triangle::Upper, Op::NoTrans, &t, &Matrix::zeros(2, 2)).is_err());
        let rect = Matrix::zeros(2, 3);
        assert!(trsm(
            &d,
            Triangle::Upper,
            Op::NoTrans,
            &rect,
            &Matrix::zeros(2, 2)
        )
        .is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool builds")
                .install(f)
        }

        fn op_of(flag: bool) -> Op {
            if flag {
                Op::Trans
            } else {
                Op::NoTrans
            }
        }

        fn layout_of(flag: bool) -> Layout {
            if flag {
                Layout::RowMajor
            } else {
                Layout::ColMajor
            }
        }

        /// Operand pair shaped so `op(A) (m x k) · op(B) (k x n)` is valid.
        #[allow(clippy::too_many_arguments)]
        fn operands(
            m: usize,
            k: usize,
            n: usize,
            ta: bool,
            tb: bool,
            la: Layout,
            lb: Layout,
            seed: u64,
        ) -> (Matrix, Matrix) {
            let (ar, ac) = if ta { (k, m) } else { (m, k) };
            let (br, bc) = if tb { (n, k) } else { (k, n) };
            (
                Matrix::random_gaussian(ar, ac, la, seed, 0),
                Matrix::random_gaussian(br, bc, lb, seed, 1),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The blocked kernel never drifts from the naive per-element
            /// reference: within 1e-12 of the output scale across shapes,
            /// layouts, op flags, and alpha/beta.
            #[test]
            fn prop_blocked_matches_naive_reference(
                m in 1usize..40,
                k in 1usize..40,
                n in 1usize..40,
                ta in 0u8..2,
                tb in 0u8..2,
                la in 0u8..2,
                lb in 0u8..2,
                lo in 0u8..2,
                alpha_tenths in -20i32..20,
                beta_tenths in -20i32..20,
                seed in 0u64..1000,
            ) {
                let d = device();
                let (ta, tb, la, lb, lo) = (ta == 1, tb == 1, la == 1, lb == 1, lo == 1);
                let (alpha, beta) = (f64::from(alpha_tenths) / 10.0, f64::from(beta_tenths) / 10.0);
                let (op_a, op_b) = (op_of(ta), op_of(tb));
                let (a, b) = operands(m, k, n, ta, tb, layout_of(la), layout_of(lb), seed);
                let c0 = Matrix::random_gaussian(m, n, Layout::ColMajor, seed, 2);
                let mut blocked = Matrix::zeros_with_layout(m, n, layout_of(lo));
                let mut naive = Matrix::zeros_with_layout(m, n, layout_of(lo));
                gemm_into(&d, alpha, op_a, &a, op_b, &b, beta, Some(&c0), &mut blocked.view_mut())
                    .expect("dims valid");
                gemm_naive_into(&d, alpha, op_a, &a, op_b, &b, beta, Some(&c0), &mut naive.view_mut())
                    .expect("dims valid");
                let scale = naive
                    .as_slice()
                    .iter()
                    .fold(1.0f64, |acc, v| acc.max(v.abs()));
                let diff = blocked.max_abs_diff(&naive).expect("same shape");
                prop_assert!(diff <= 1e-12 * scale, "diff {diff:e} vs scale {scale:e}");
            }

            /// Blocked-GEMM bits are a pure function of shape: invariant to the
            /// thread count (1/2/4/7) and to cache block-size overrides.
            #[test]
            fn prop_blocked_bits_pure_function_of_shape(
                m in 1usize..40,
                k in 1usize..40,
                n in 1usize..40,
                ta in 0u8..2,
                tb in 0u8..2,
                kc in 1usize..512,
                nc in 1usize..512,
                seed in 0u64..1000,
            ) {
                let d = device();
                let (ta, tb) = (ta == 1, tb == 1);
                let (op_a, op_b) = (op_of(ta), op_of(tb));
                let (a, b) = operands(m, k, n, ta, tb, Layout::RowMajor, Layout::ColMajor, seed);
                let run = |threads: usize, blocks: BlockSizes| {
                    with_threads(threads, || {
                        let mut out = Matrix::zeros(m, n);
                        gemm_into_with_blocks(
                            &d, 1.0, op_a, &a, op_b, &b, 0.0, None,
                            &mut out.view_mut(), blocks,
                        )
                        .expect("dims valid");
                        out.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
                    })
                };
                let reference = run(1, BlockSizes::default());
                for threads in [2usize, 4, 7] {
                    prop_assert_eq!(&run(threads, BlockSizes::default()), &reference,
                        "bits drifted at {} threads", threads);
                }
                let blocks = BlockSizes { kc, nc };
                prop_assert_eq!(&run(1, blocks), &reference,
                    "bits drifted under kc={} nc={}", kc, nc);
                prop_assert_eq!(&run(7, blocks), &reference,
                    "bits drifted under kc={} nc={} at 7 threads", kc, nc);
            }
        }
    }
}
