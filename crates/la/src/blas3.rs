//! Level-3 BLAS: matrix-matrix kernels (GEMM, SYRK, TRSM) with device cost accounting.
//!
//! These are the cuBLAS substitutes.  GEMM packs both operands into dot-product-friendly
//! orientations and parallelises over output columns; SYRK exploits symmetry exactly the
//! way the paper uses it for the Gram matrix `AᵀA` (Section 6).  The paper notes that
//! cuBLAS SyRK is slower than GeMM in practice and therefore times the Gram matrix with
//! GeMM; both are provided so the ablation bench can reproduce that comparison.

use crate::blas1::dot_unrecorded;
use crate::blas2::Triangle;
use crate::error::{dim_err, LaError};
use crate::matrix::{Layout, Matrix, MatrixViewMut, Op};
use rayon::prelude::*;
use sketch_gpu_sim::{Device, KernelCost};

/// Pack `op(A)` so that its rows are contiguous (row-major copy of the logical operand).
fn pack_rows(a: &Matrix, op: Op) -> Vec<f64> {
    let m = op.rows(a);
    let k = op.cols(a);
    let mut out = vec![0.0; m * k];
    match (op, a.layout()) {
        (Op::NoTrans, Layout::RowMajor) | (Op::Trans, Layout::ColMajor) => {
            out.copy_from_slice(a.as_slice());
        }
        _ => {
            out.par_chunks_mut(k.max(1))
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = op.get(a, i, j);
                    }
                });
        }
    }
    out
}

/// Pack `op(B)` so that its columns are contiguous (column-major copy of the operand).
fn pack_cols(b: &Matrix, op: Op) -> Vec<f64> {
    let k = op.rows(b);
    let n = op.cols(b);
    let mut out = vec![0.0; k * n];
    match (op, b.layout()) {
        (Op::NoTrans, Layout::ColMajor) | (Op::Trans, Layout::RowMajor) => {
            out.copy_from_slice(b.as_slice());
        }
        _ => {
            out.par_chunks_mut(k.max(1))
                .enumerate()
                .for_each(|(j, col)| {
                    for (i, slot) in col.iter_mut().enumerate() {
                        *slot = op.get(b, i, j);
                    }
                });
        }
    }
    out
}

/// General matrix-matrix product `C <- alpha * op(A) * op(B) + beta * C`.
///
/// The result is returned as a new column-major matrix; `c` supplies the `beta`-scaled
/// initial value when provided.  This is the thin allocating wrapper around
/// [`gemm_into`], which buffer-reusing callers invoke directly.
// The argument list deliberately mirrors BLAS DGEMM's parameter order.
#[allow(clippy::too_many_arguments)]
pub fn gemm_op(
    device: &Device,
    alpha: f64,
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
) -> Result<Matrix, LaError> {
    let m = op_a.rows(a);
    let n = op_b.cols(b);
    let mut out = Matrix::zeros(m, n);
    gemm_into(
        device,
        alpha,
        op_a,
        a,
        op_b,
        b,
        beta,
        c,
        &mut out.view_mut(),
    )?;
    Ok(out)
}

/// Buffer-reusing GEMM: `out <- alpha * op(A) * op(B) + beta * C`, written into a
/// caller-owned buffer of either layout.  Produces bit-for-bit the same values (and
/// records the same cost) as [`gemm_op`] — every output element is an independent
/// packed dot product, so the write layout cannot change the arithmetic.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into(
    device: &Device,
    alpha: f64,
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
    out: &mut MatrixViewMut<'_>,
) -> Result<(), LaError> {
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    let kb = op_b.rows(b);
    let n = op_b.cols(b);
    if k != kb {
        return Err(dim_err(
            "gemm",
            format!("op(A) is {m}x{k} but op(B) is {kb}x{n}"),
        ));
    }
    if let Some(c0) = c {
        if c0.nrows() != m || c0.ncols() != n {
            return Err(dim_err(
                "gemm",
                format!("C is {}x{} but product is {m}x{n}", c0.nrows(), c0.ncols()),
            ));
        }
    }
    if out.nrows() != m || out.ncols() != n {
        return Err(dim_err(
            "gemm",
            format!(
                "output buffer is {}x{} but product is {m}x{n}",
                out.nrows(),
                out.ncols()
            ),
        ));
    }

    let packed_a = pack_rows(a, op_a);
    let packed_b = pack_cols(b, op_b);

    let element = |i: usize, j: usize| {
        let arow = &packed_a[i * k..(i + 1) * k];
        let bcol = &packed_b[j * k..(j + 1) * k];
        let mut value = alpha * dot_unrecorded(arow, bcol);
        if beta != 0.0 {
            if let Some(c0) = c {
                value += beta * c0.get(i, j);
            }
        }
        value
    };
    match out.layout() {
        Layout::ColMajor => {
            out.as_mut_slice()
                .par_chunks_mut(m.max(1))
                .enumerate()
                .for_each(|(j, col)| {
                    for (i, slot) in col.iter_mut().enumerate() {
                        *slot = element(i, j);
                    }
                });
        }
        Layout::RowMajor => {
            out.as_mut_slice()
                .par_chunks_mut(n.max(1))
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = element(i, j);
                    }
                });
        }
    }

    let (m64, n64, k64) = (m as u64, n as u64, k as u64);
    let read_c = if beta != 0.0 && c.is_some() {
        m64 * n64
    } else {
        0
    };
    device.record(KernelCost::new(
        KernelCost::f64_bytes(m64 * k64 + k64 * n64 + read_c),
        KernelCost::f64_bytes(m64 * n64),
        2 * m64 * n64 * k64,
        1,
    ));
    Ok(())
}

/// Convenience GEMM without transposes: `C = alpha * A * B + beta * C`.
pub fn gemm(
    device: &Device,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: Option<&Matrix>,
) -> Result<Matrix, LaError> {
    gemm_op(device, alpha, Op::NoTrans, a, Op::NoTrans, b, beta, c)
}

/// Symmetric rank-k update computing the Gram matrix `G = AᵀA` (column-major result).
///
/// Only the upper triangle is computed; the lower triangle is mirrored afterwards, which
/// halves the flops compared to [`gemm_op`] with `(Op::Trans, Op::NoTrans)` — the SyRK
/// vs GeMM trade-off discussed in Section 6.
pub fn syrk_gram(device: &Device, a: &Matrix) -> Matrix {
    let d = a.nrows();
    let n = a.ncols();
    // Columns of A must be contiguous for the dot products.
    let packed = pack_cols(a, Op::NoTrans);

    let mut g = Matrix::zeros(n, n);
    {
        let data = g.as_mut_slice();
        data.par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(j, col)| {
                let cj = &packed[j * d..(j + 1) * d];
                for (i, slot) in col.iter_mut().enumerate().take(j + 1) {
                    let ci = &packed[i * d..(i + 1) * d];
                    *slot = dot_unrecorded(ci, cj);
                }
            });
    }
    // Mirror the strictly-upper part (stored in columns j, rows i<j) to the lower part.
    for j in 0..n {
        for i in 0..j {
            let v = g.get(i, j);
            g.set(j, i, v);
        }
    }

    let (d64, n64) = (d as u64, n as u64);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(d64 * n64),
        KernelCost::f64_bytes(n64 * n64),
        d64 * n64 * (n64 + 1),
        1,
    ));
    g
}

/// Gram matrix via plain GEMM (`G = AᵀA` computed with full 2dn² flops), matching how
/// the paper actually times the normal equations ("SyRK's performance is much worse in
/// practice than GeMM").
pub fn gram_gemm(device: &Device, a: &Matrix) -> Result<Matrix, LaError> {
    gemm_op(device, 1.0, Op::Trans, a, Op::NoTrans, a, 0.0, None)
}

/// Triangular solve with multiple right-hand sides: solves `op(T) X = B` (left side).
pub fn trsm(
    device: &Device,
    triangle: Triangle,
    op_t: Op,
    t: &Matrix,
    b: &Matrix,
) -> Result<Matrix, LaError> {
    let n = t.nrows();
    if t.ncols() != n {
        return Err(dim_err("trsm", format!("T is {}x{}", t.nrows(), t.ncols())));
    }
    if b.nrows() != n {
        return Err(dim_err(
            "trsm",
            format!("T is {n}x{n} but B is {}x{}", b.nrows(), b.ncols()),
        ));
    }
    let nrhs = b.ncols();

    let effective = match (triangle, op_t) {
        (Triangle::Upper, Op::NoTrans) | (Triangle::Lower, Op::Trans) => Triangle::Upper,
        (Triangle::Lower, Op::NoTrans) | (Triangle::Upper, Op::Trans) => Triangle::Lower,
    };
    // Validate the diagonal once up front.
    for i in 0..n {
        if op_t.get(t, i, i) == 0.0 {
            return Err(LaError::SingularTriangular { index: i });
        }
    }

    let mut x = Matrix::zeros(n, nrhs);
    {
        let data = x.as_mut_slice();
        data.par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(col_idx, col)| {
                for i in 0..n {
                    col[i] = b.get(i, col_idx);
                }
                match effective {
                    Triangle::Upper => {
                        for i in (0..n).rev() {
                            let mut acc = col[i];
                            for j in i + 1..n {
                                acc -= op_t.get(t, i, j) * col[j];
                            }
                            col[i] = acc / op_t.get(t, i, i);
                        }
                    }
                    Triangle::Lower => {
                        for i in 0..n {
                            let mut acc = col[i];
                            for j in 0..i {
                                acc -= op_t.get(t, i, j) * col[j];
                            }
                            col[i] = acc / op_t.get(t, i, i);
                        }
                    }
                }
            });
    }

    let (n64, r64) = (n as u64, nrhs as u64);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(n64 * (n64 + 1) / 2 + n64 * r64),
        KernelCost::f64_bytes(n64 * r64),
        n64 * n64 * r64,
        1,
    ));
    Ok(x)
}

/// Right-side triangular solve: solves `X op(T) = B`, i.e. `X = B op(T)^{-1}`.
///
/// Used by rand_cholQR to precondition `A₀ = A R₀^{-1}` (Algorithm 4, step 3).
pub fn trsm_right(
    device: &Device,
    triangle: Triangle,
    op_t: Op,
    t: &Matrix,
    b: &Matrix,
) -> Result<Matrix, LaError> {
    let n = t.nrows();
    if t.ncols() != n {
        return Err(dim_err(
            "trsm_right",
            format!("T is {}x{}", t.nrows(), t.ncols()),
        ));
    }
    if b.ncols() != n {
        return Err(dim_err(
            "trsm_right",
            format!("T is {n}x{n} but B is {}x{}", b.nrows(), b.ncols()),
        ));
    }
    // X op(T) = B  <=>  op(T)ᵀ Xᵀ = Bᵀ.  Solve column-by-column of Xᵀ, i.e. row-by-row
    // of X, in parallel over the rows of B.
    let flipped_op = match op_t {
        Op::NoTrans => Op::Trans,
        Op::Trans => Op::NoTrans,
    };
    let effective = match (triangle, flipped_op) {
        (Triangle::Upper, Op::NoTrans) | (Triangle::Lower, Op::Trans) => Triangle::Upper,
        (Triangle::Lower, Op::NoTrans) | (Triangle::Upper, Op::Trans) => Triangle::Lower,
    };
    for i in 0..n {
        if t.get(i, i) == 0.0 {
            return Err(LaError::SingularTriangular { index: i });
        }
    }

    let m = b.nrows();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    (0..m)
        .into_par_iter()
        .map(|r| {
            let mut row: Vec<f64> = (0..n).map(|j| b.get(r, j)).collect();
            match effective {
                Triangle::Upper => {
                    for i in (0..n).rev() {
                        let mut acc = row[i];
                        for j in i + 1..n {
                            acc -= flipped_op.get(t, i, j) * row[j];
                        }
                        row[i] = acc / flipped_op.get(t, i, i);
                    }
                }
                Triangle::Lower => {
                    for i in 0..n {
                        let mut acc = row[i];
                        for j in 0..i {
                            acc -= flipped_op.get(t, i, j) * row[j];
                        }
                        row[i] = acc / flipped_op.get(t, i, i);
                    }
                }
            }
            row
        })
        .collect_into_vec(&mut rows);

    let mut x = Matrix::zeros(m, n);
    for (r, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            x.set(r, j, v);
        }
    }

    let (n64, m64) = (n as u64, m as u64);
    device.record(KernelCost::new(
        KernelCost::f64_bytes(n64 * (n64 + 1) / 2 + m64 * n64),
        KernelCost::f64_bytes(m64 * n64),
        m64 * n64 * n64,
        1,
    ));
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::unlimited()
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "matrices differ by {}",
            a.max_abs_diff(b).unwrap()
        );
    }

    #[test]
    fn gemm_small_known_product() {
        let d = device();
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&d, 1.0, &a, &b, 0.0, None).unwrap();
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert_close(&c, &expect, 1e-12);
    }

    #[test]
    fn gemm_identity_is_neutral() {
        let d = device();
        let a = Matrix::random_gaussian(7, 5, Layout::ColMajor, 1, 0);
        let c = gemm(&d, 1.0, &a, &Matrix::identity(5), 0.0, None).unwrap();
        assert_close(&c, &a.to_layout(&d, Layout::ColMajor), 1e-12);
    }

    #[test]
    fn gemm_respects_alpha_beta_and_c() {
        let d = device();
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let c0 = Matrix::from_fn(3, 3, Layout::ColMajor, |i, j| (i + j) as f64);
        let c = gemm(&d, 2.0, &a, &b, 0.5, Some(&c0)).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 2.0 } else { 0.0 } + 0.5 * (i + j) as f64;
                assert!((c.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemm_transpose_combinations_agree_with_explicit_transpose() {
        let d = device();
        let a = Matrix::random_gaussian(4, 6, Layout::RowMajor, 2, 0);
        let b = Matrix::random_gaussian(4, 3, Layout::ColMajor, 2, 1);
        // AᵀB via op flags vs via materialised transpose.
        let via_op = gemm_op(&d, 1.0, Op::Trans, &a, Op::NoTrans, &b, 0.0, None).unwrap();
        let at = a.transpose(&d);
        let via_explicit = gemm(&d, 1.0, &at, &b, 0.0, None).unwrap();
        assert_close(&via_op, &via_explicit, 1e-12);

        // ABᵀ with A 4x6, B 3x6.
        let b2 = Matrix::random_gaussian(3, 6, Layout::RowMajor, 5, 0);
        let via_op2 = gemm_op(&d, 1.0, Op::NoTrans, &a, Op::Trans, &b2, 0.0, None).unwrap();
        let b2t = b2.transpose(&d);
        let via_explicit2 = gemm(&d, 1.0, &a, &b2t, 0.0, None).unwrap();
        assert_close(&via_op2, &via_explicit2, 1e-12);
    }

    #[test]
    fn gemm_into_is_bit_identical_in_both_output_layouts() {
        let d = device();
        let a = Matrix::random_gaussian(5, 7, Layout::RowMajor, 1, 0);
        let b = Matrix::random_gaussian(7, 4, Layout::ColMajor, 1, 1);
        let reference = gemm(&d, 1.0, &a, &b, 0.0, None).unwrap();
        for layout in [Layout::ColMajor, Layout::RowMajor] {
            // Start from a dirty buffer: every element must be overwritten.
            let mut out = Matrix::from_fn(5, 4, layout, |_, _| f64::NAN);
            gemm_into(
                &d,
                1.0,
                Op::NoTrans,
                &a,
                Op::NoTrans,
                &b,
                0.0,
                None,
                &mut out.view_mut(),
            )
            .unwrap();
            for i in 0..5 {
                for j in 0..4 {
                    assert!(
                        out.get(i, j).to_bits() == reference.get(i, j).to_bits(),
                        "({i},{j}) differs in {layout:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_into_rejects_wrong_output_shape() {
        let d = device();
        let a = Matrix::identity(3);
        let b = Matrix::identity(3);
        let mut out = Matrix::zeros(2, 3);
        assert!(gemm_into(
            &d,
            1.0,
            Op::NoTrans,
            &a,
            Op::NoTrans,
            &b,
            0.0,
            None,
            &mut out.view_mut()
        )
        .is_err());
    }

    #[test]
    fn gemm_rejects_mismatched_inner_dimensions() {
        let d = device();
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm(&d, 1.0, &a, &b, 0.0, None).is_err());
        let c_wrong = Matrix::zeros(5, 5);
        let b_ok = Matrix::zeros(3, 2);
        assert!(gemm(&d, 1.0, &a, &b_ok, 1.0, Some(&c_wrong)).is_err());
    }

    #[test]
    fn gemm_records_2mnk_flops() {
        let d = device();
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(4, 5);
        let _ = gemm(&d, 1.0, &a, &b, 0.0, None).unwrap();
        assert_eq!(d.tracker().snapshot().flops, 2 * 3 * 4 * 5);
    }

    #[test]
    fn syrk_matches_gemm_gram() {
        let d = device();
        let a = Matrix::random_gaussian(50, 8, Layout::ColMajor, 7, 0);
        let g1 = syrk_gram(&d, &a);
        let g2 = gram_gemm(&d, &a).unwrap();
        assert_close(&g1, &g2, 1e-10);
        // Gram matrices are symmetric.
        for i in 0..8 {
            for j in 0..8 {
                assert!((g1.get(i, j) - g1.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn syrk_uses_roughly_half_the_flops_of_gemm_gram() {
        let d1 = device();
        let a = Matrix::zeros(100, 10);
        let _ = syrk_gram(&d1, &a);
        let syrk_flops = d1.tracker().snapshot().flops;

        let d2 = device();
        let _ = gram_gemm(&d2, &a).unwrap();
        let gemm_flops = d2.tracker().snapshot().flops;
        assert!(syrk_flops < gemm_flops);
        assert!(syrk_flops * 2 <= gemm_flops + 2 * 100 * 10);
    }

    #[test]
    fn syrk_gram_works_on_row_major_input() {
        let d = device();
        let a_rm = Matrix::random_gaussian(40, 6, Layout::RowMajor, 9, 0);
        let a_cm = a_rm.to_layout(&d, Layout::ColMajor);
        assert_close(&syrk_gram(&d, &a_rm), &syrk_gram(&d, &a_cm), 1e-12);
    }

    #[test]
    fn trsm_left_solves_upper_and_lower_systems() {
        let d = device();
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let x_true = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let b = gemm(&d, 1.0, &u, &x_true, 0.0, None).unwrap();
        let x = trsm(&d, Triangle::Upper, Op::NoTrans, &u, &b).unwrap();
        assert_close(&x, &x_true.to_layout(&d, Layout::ColMajor), 1e-12);

        // Lower case: solve Uᵀ X = B.
        let bt = gemm_op(&d, 1.0, Op::Trans, &u, Op::NoTrans, &x_true, 0.0, None).unwrap();
        let xt = trsm(&d, Triangle::Upper, Op::Trans, &u, &bt).unwrap();
        assert_close(&xt, &x_true.to_layout(&d, Layout::ColMajor), 1e-12);
    }

    #[test]
    fn trsm_right_solves_post_multiplied_system() {
        let d = device();
        let r = Matrix::from_rows(&[&[2.0, -1.0, 0.5], &[0.0, 1.5, 1.0], &[0.0, 0.0, 3.0]]);
        let x_true = Matrix::random_gaussian(6, 3, Layout::ColMajor, 11, 0);
        // B = X R  => X = B R^{-1}
        let b = gemm(&d, 1.0, &x_true, &r, 0.0, None).unwrap();
        let x = trsm_right(&d, Triangle::Upper, Op::NoTrans, &r, &b).unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn trsm_detects_singular_diagonal() {
        let d = device();
        let mut u = Matrix::identity(3);
        u.set(2, 2, 0.0);
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            trsm(&d, Triangle::Upper, Op::NoTrans, &u, &b),
            Err(LaError::SingularTriangular { index: 2 })
        ));
        let b_right = Matrix::zeros(2, 3);
        assert!(trsm_right(&d, Triangle::Upper, Op::NoTrans, &u, &b_right).is_err());
    }

    #[test]
    fn trsm_rejects_bad_shapes() {
        let d = device();
        let t = Matrix::identity(3);
        assert!(trsm(&d, Triangle::Upper, Op::NoTrans, &t, &Matrix::zeros(2, 2)).is_err());
        assert!(trsm_right(&d, Triangle::Upper, Op::NoTrans, &t, &Matrix::zeros(2, 2)).is_err());
        let rect = Matrix::zeros(2, 3);
        assert!(trsm(
            &d,
            Triangle::Upper,
            Op::NoTrans,
            &rect,
            &Matrix::zeros(2, 2)
        )
        .is_err());
    }
}
