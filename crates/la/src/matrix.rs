//! Dense `f64` matrices with explicit storage layout.
//!
//! Storage layout is a first-class citizen here because it is a first-class citizen in
//! the paper: Section 6.1 stores `A` row-major so the CountSketch's row-wise reads
//! coalesce, converts the sketched result to column-major for cuBLAS/cuSOLVER, and in
//! the multisketch deliberately interprets a row-major `Y` as the transpose of a
//! column-major `Y` to postpone (and shrink) the conversion.

use crate::error::{dim_err, LaError};
use sketch_gpu_sim::{Device, KernelCost};
use sketch_rng::fill;

/// Whether an operand enters a BLAS call as itself or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl Op {
    /// Logical number of rows of `op(A)`.
    #[inline]
    pub fn rows(&self, a: &Matrix) -> usize {
        match self {
            Op::NoTrans => a.nrows(),
            Op::Trans => a.ncols(),
        }
    }

    /// Logical number of columns of `op(A)`.
    #[inline]
    pub fn cols(&self, a: &Matrix) -> usize {
        match self {
            Op::NoTrans => a.ncols(),
            Op::Trans => a.nrows(),
        }
    }

    /// Element `(i, j)` of `op(A)`.
    #[inline(always)]
    pub fn get(&self, a: &Matrix, i: usize, j: usize) -> f64 {
        match self {
            Op::NoTrans => a.get(i, j),
            Op::Trans => a.get(j, i),
        }
    }
}

/// Storage order of a [`Matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Row-major: element `(i, j)` lives at `i * ncols + j`.
    RowMajor,
    /// Column-major: element `(i, j)` lives at `i + j * nrows`.
    ColMajor,
}

impl Layout {
    /// The opposite layout.
    #[inline]
    pub fn transposed(self) -> Layout {
        match self {
            Layout::RowMajor => Layout::ColMajor,
            Layout::ColMajor => Layout::RowMajor,
        }
    }
}

/// A dense matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    nrows: usize,
    ncols: usize,
    layout: Layout,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero matrix with the given layout.
    pub fn zeros_with_layout(nrows: usize, ncols: usize, layout: Layout) -> Self {
        Self {
            nrows,
            ncols,
            layout,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Create a zero matrix in column-major layout (the library default).
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self::zeros_with_layout(nrows, ncols, Layout::ColMajor)
    }

    /// Create a matrix from existing data in the given layout.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, layout: Layout, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "data length {} does not match {}x{}",
            data.len(),
            nrows,
            ncols
        );
        Self {
            nrows,
            ncols,
            layout,
            data,
        }
    }

    /// Build a matrix from row slices (row-major input, column-major storage).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut m = Self::zeros(nrows, ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)`.
    pub fn from_fn(
        nrows: usize,
        ncols: usize,
        layout: Layout,
        f: impl Fn(usize, usize) -> f64,
    ) -> Self {
        let mut m = Self::zeros_with_layout(nrows, ncols, layout);
        for i in 0..nrows {
            for j in 0..ncols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// The identity matrix of order `n` (column-major).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// A matrix with i.i.d. standard Gaussian entries, generated deterministically from
    /// `(seed, stream)` with the Philox generator (cuRAND substitute).
    pub fn random_gaussian(
        nrows: usize,
        ncols: usize,
        layout: Layout,
        seed: u64,
        stream: u64,
    ) -> Self {
        let data = fill::gaussian_vec(seed, stream, nrows * ncols);
        Self::from_vec(nrows, ncols, layout, data)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Storage layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Total number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of bytes the matrix occupies (used for device memory reservations).
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Flat index of `(i, j)` under the current layout.
    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nrows && j < self.ncols);
        match self.layout {
            Layout::RowMajor => i * self.ncols + j,
            Layout::ColMajor => i + j * self.nrows,
        }
    }

    /// Read element `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Write element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.idx(i, j);
        self.data[idx] = value;
    }

    /// Add `value` to element `(i, j)`.
    #[inline(always)]
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.idx(i, j);
        self.data[idx] += value;
    }

    /// Immutable view of the underlying storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its storage.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Contiguous row `i`; only available in row-major layout.
    #[inline]
    pub fn row(&self, i: usize) -> Option<&[f64]> {
        match self.layout {
            Layout::RowMajor => {
                let start = i * self.ncols;
                Some(&self.data[start..start + self.ncols])
            }
            Layout::ColMajor => None,
        }
    }

    /// Contiguous column `j`; only available in column-major layout.
    #[inline]
    pub fn col(&self, j: usize) -> Option<&[f64]> {
        match self.layout {
            Layout::ColMajor => {
                let start = j * self.nrows;
                Some(&self.data[start..start + self.nrows])
            }
            Layout::RowMajor => None,
        }
    }

    /// Mutable contiguous column `j`; only available in column-major layout.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> Option<&mut [f64]> {
        match self.layout {
            Layout::ColMajor => {
                let start = j * self.nrows;
                Some(&mut self.data[start..start + self.nrows])
            }
            Layout::RowMajor => None,
        }
    }

    /// Copy column `j` into a new vector regardless of layout.
    pub fn col_to_vec(&self, j: usize) -> Vec<f64> {
        (0..self.nrows).map(|i| self.get(i, j)).collect()
    }

    /// Copy row `i` into a new vector regardless of layout.
    pub fn row_to_vec(&self, i: usize) -> Vec<f64> {
        (0..self.ncols).map(|j| self.get(i, j)).collect()
    }

    /// Return a copy converted to the requested layout, recording the conversion
    /// traffic on `device` (a layout conversion reads and writes every element once).
    pub fn to_layout(&self, device: &Device, layout: Layout) -> Matrix {
        if self.layout == layout {
            return self.clone();
        }
        let mut out = Matrix::zeros_with_layout(self.nrows, self.ncols, layout);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.set(i, j, self.get(i, j));
            }
        }
        let bytes = KernelCost::f64_bytes(self.data.len() as u64);
        device.record(KernelCost::new(bytes, bytes, 0, 1));
        out
    }

    /// Reinterpret the matrix as its transpose *without moving any data*.
    ///
    /// A row-major `m x n` buffer is exactly a column-major `n x m` buffer; this is the
    /// "interpret Y stored in row-major as the transpose of Y stored in column-major"
    /// trick of Section 6.1, and it is free.
    pub fn reinterpret_transposed(self) -> Matrix {
        Matrix {
            nrows: self.ncols,
            ncols: self.nrows,
            layout: self.layout.transposed(),
            data: self.data,
        }
    }

    /// Materialise the transpose (moves data), recording the traffic on `device`.
    pub fn transpose(&self, device: &Device) -> Matrix {
        let mut out = Matrix::zeros_with_layout(self.ncols, self.nrows, self.layout);
        self.transpose_into(device, &mut out.view_mut())
            .expect("freshly allocated transpose target always matches");
        out
    }

    /// Write the transpose into an existing buffer (same traffic model as
    /// [`transpose`](Self::transpose), no allocation).
    pub fn transpose_into(
        &self,
        device: &Device,
        out: &mut MatrixViewMut<'_>,
    ) -> Result<(), LaError> {
        if out.nrows() != self.ncols || out.ncols() != self.nrows {
            return Err(dim_err(
                "transpose_into",
                format!(
                    "source is {}x{} but target is {}x{}",
                    self.nrows,
                    self.ncols,
                    out.nrows(),
                    out.ncols()
                ),
            ));
        }
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out.set(j, i, self.get(i, j));
            }
        }
        let bytes = KernelCost::f64_bytes(self.data.len() as u64);
        device.record(KernelCost::new(bytes, bytes, 0, 1));
        Ok(())
    }

    /// Mutable view of the whole matrix (used by the buffer-reusing `*_into` kernels).
    pub fn view_mut(&mut self) -> MatrixViewMut<'_> {
        MatrixViewMut {
            nrows: self.nrows,
            ncols: self.ncols,
            layout: self.layout,
            data: &mut self.data,
        }
    }

    /// Extract the leading `rows x cols` block as a new matrix.
    pub fn submatrix(&self, rows: usize, cols: usize) -> Result<Matrix, LaError> {
        if rows > self.nrows || cols > self.ncols {
            return Err(dim_err(
                "submatrix",
                format!(
                    "requested {}x{} from {}x{}",
                    rows, cols, self.nrows, self.ncols
                ),
            ));
        }
        Ok(Matrix::from_fn(rows, cols, self.layout, |i, j| {
            self.get(i, j)
        }))
    }

    /// Maximum absolute difference with another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, LaError> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(dim_err(
                "max_abs_diff",
                format!(
                    "{}x{} vs {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            ));
        }
        let mut max = 0.0f64;
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                max = max.max((self.get(i, j) - other.get(i, j)).abs());
            }
        }
        Ok(max)
    }
}

/// A mutable view over a caller-owned dense buffer with matrix shape and layout.
///
/// This is the output type of the buffer-reusing kernels (`gemm_into`, `spmm_into`,
/// `SketchOperator::apply_into`): the caller allocates (and reserves device memory
/// for) the buffer once and reuses it across calls, so the hot path performs no
/// intermediate matrix allocations.
#[derive(Debug)]
pub struct MatrixViewMut<'a> {
    nrows: usize,
    ncols: usize,
    layout: Layout,
    data: &'a mut [f64],
}

impl<'a> MatrixViewMut<'a> {
    /// Wrap a raw buffer as an `nrows x ncols` matrix view in the given layout.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn new(nrows: usize, ncols: usize, layout: Layout, data: &'a mut [f64]) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "buffer length {} does not match {}x{}",
            data.len(),
            nrows,
            ncols
        );
        Self {
            nrows,
            ncols,
            layout,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Storage layout of the viewed buffer.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Flat index of `(i, j)` under the view's layout.
    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nrows && j < self.ncols);
        match self.layout {
            Layout::RowMajor => i * self.ncols + j,
            Layout::ColMajor => i + j * self.nrows,
        }
    }

    /// Read element `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Write element `(i, j)`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.idx(i, j);
        self.data[idx] = value;
    }

    /// Add `value` to element `(i, j)`.
    #[inline(always)]
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.idx(i, j);
        self.data[idx] += value;
    }

    /// Overwrite every element with `value` (kernels that scatter-accumulate call
    /// this with `0.0` first, mirroring the zeroing of a fresh output buffer).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// The underlying storage, immutably.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.data
    }

    /// The underlying storage, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data
    }

    /// Reborrow the view (so it can be passed to helpers without consuming it).
    pub fn reborrow(&mut self) -> MatrixViewMut<'_> {
        MatrixViewMut {
            nrows: self.nrows,
            ncols: self.ncols,
            layout: self.layout,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn indexing_round_trips_in_both_layouts() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let mut m = Matrix::zeros_with_layout(3, 4, layout);
            let mut v = 0.0;
            for i in 0..3 {
                for j in 0..4 {
                    m.set(i, j, v);
                    v += 1.0;
                }
            }
            let mut expect = 0.0;
            for i in 0..3 {
                for j in 0..4 {
                    assert_eq!(m.get(i, j), expect);
                    expect += 1.0;
                }
            }
        }
    }

    #[test]
    fn from_rows_matches_explicit_sets() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row_to_vec(1), vec![4.0, 5.0, 6.0]);
        assert_eq!(m.col_to_vec(1), vec![2.0, 5.0]);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let eye = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(eye.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn layout_conversion_preserves_elements_and_records_traffic() {
        let device = Device::h100();
        let m = Matrix::from_fn(5, 7, Layout::RowMajor, |i, j| (i * 10 + j) as f64);
        let c = m.to_layout(&device, Layout::ColMajor);
        assert_eq!(c.layout(), Layout::ColMajor);
        assert_eq!(m.max_abs_diff(&c).unwrap(), 0.0);
        let cost = device.tracker().snapshot();
        assert_eq!(cost.bytes_read, 5 * 7 * 8);
        assert_eq!(cost.bytes_written, 5 * 7 * 8);
    }

    #[test]
    fn to_layout_same_layout_is_free() {
        let device = Device::h100();
        let m = Matrix::identity(3);
        let c = m.to_layout(&device, Layout::ColMajor);
        assert_eq!(m, c);
        assert_eq!(device.tracker().snapshot().total_bytes(), 0);
    }

    #[test]
    fn reinterpret_transposed_is_a_true_transpose_view() {
        let m = Matrix::from_fn(3, 5, Layout::RowMajor, |i, j| (i * 100 + j) as f64);
        let t = m.clone().reinterpret_transposed();
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.layout(), Layout::ColMajor);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(t.get(j, i), m.get(i, j));
            }
        }
    }

    #[test]
    fn materialised_transpose_matches_reinterpretation() {
        let device = Device::h100();
        let m = Matrix::from_fn(4, 6, Layout::ColMajor, |i, j| (i as f64) - (j as f64) * 0.5);
        let t1 = m.transpose(&device);
        let t2 = m.clone().reinterpret_transposed();
        // Same logical contents, possibly different layout.
        for i in 0..6 {
            for j in 0..4 {
                assert_eq!(t1.get(i, j), t2.get(i, j));
            }
        }
    }

    #[test]
    fn row_and_col_views_respect_layout() {
        let rm = Matrix::from_fn(2, 3, Layout::RowMajor, |i, j| (i * 3 + j) as f64);
        assert_eq!(rm.row(1).unwrap(), &[3.0, 4.0, 5.0]);
        assert!(rm.col(0).is_none());

        let cm = rm.to_layout(&Device::unlimited(), Layout::ColMajor);
        assert_eq!(cm.col(2).unwrap(), &[2.0, 5.0]);
        assert!(cm.row(0).is_none());
    }

    #[test]
    fn col_mut_writes_through() {
        let mut m = Matrix::zeros(3, 2);
        m.col_mut(1).unwrap().copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn submatrix_extracts_leading_block() {
        let m = Matrix::from_fn(4, 4, Layout::ColMajor, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(2, 3).unwrap();
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.get(1, 2), m.get(1, 2));
        assert!(m.submatrix(5, 1).is_err());
    }

    #[test]
    fn random_gaussian_is_reproducible() {
        let a = Matrix::random_gaussian(10, 10, Layout::ColMajor, 3, 1);
        let b = Matrix::random_gaussian(10, 10, Layout::ColMajor, 3, 1);
        let c = Matrix::random_gaussian(10, 10, Layout::ColMajor, 3, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn size_bytes_counts_doubles() {
        let m = Matrix::zeros(10, 3);
        assert_eq!(m.size_bytes(), 240);
        assert_eq!(m.len(), 30);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_wrong_length() {
        Matrix::from_vec(2, 2, Layout::ColMajor, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn view_mut_writes_through_in_both_layouts() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let mut m = Matrix::zeros_with_layout(3, 4, layout);
            {
                let mut v = m.view_mut();
                assert_eq!(v.nrows(), 3);
                assert_eq!(v.ncols(), 4);
                assert_eq!(v.layout(), layout);
                v.set(1, 2, 5.0);
                v.add_to(1, 2, 0.5);
                assert_eq!(v.get(1, 2), 5.5);
            }
            assert_eq!(m.get(1, 2), 5.5);
        }
    }

    #[test]
    fn view_fill_and_reborrow() {
        let mut buf = vec![1.0; 6];
        let mut v = MatrixViewMut::new(2, 3, Layout::RowMajor, &mut buf);
        v.reborrow().fill(0.0);
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
        v.as_mut_slice()[0] = 2.0;
        assert_eq!(v.get(0, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn view_rejects_wrong_buffer_length() {
        let mut buf = vec![0.0; 5];
        MatrixViewMut::new(2, 3, Layout::RowMajor, &mut buf);
    }

    #[test]
    fn transpose_into_matches_transpose_and_rejects_bad_shapes() {
        let device = Device::unlimited();
        let m = Matrix::from_fn(3, 5, Layout::RowMajor, |i, j| (i * 10 + j) as f64);
        let t = m.transpose(&device);
        let mut out = Matrix::zeros_with_layout(5, 3, Layout::ColMajor);
        m.transpose_into(&device, &mut out.view_mut()).unwrap();
        assert_eq!(out.max_abs_diff(&t).unwrap(), 0.0);

        let mut wrong = Matrix::zeros(3, 5);
        assert!(m.transpose_into(&device, &mut wrong.view_mut()).is_err());
    }

    #[test]
    fn add_to_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_to(0, 1, 1.5);
        m.add_to(0, 1, 2.5);
        assert_eq!(m.get(0, 1), 4.0);
    }

    proptest! {
        #[test]
        fn prop_layout_round_trip(nrows in 1usize..20, ncols in 1usize..20, seed in 0u64..1000) {
            let device = Device::unlimited();
            let m = Matrix::random_gaussian(nrows, ncols, Layout::RowMajor, seed, 0);
            let there = m.to_layout(&device, Layout::ColMajor);
            let back = there.to_layout(&device, Layout::RowMajor);
            prop_assert_eq!(m, back);
        }

        #[test]
        fn prop_double_reinterpret_is_identity(nrows in 1usize..16, ncols in 1usize..16, seed in 0u64..1000) {
            let m = Matrix::random_gaussian(nrows, ncols, Layout::ColMajor, seed, 0);
            let twice = m.clone().reinterpret_transposed().reinterpret_transposed();
            prop_assert_eq!(m, twice);
        }

        #[test]
        fn prop_transpose_of_transpose_is_identity(nrows in 1usize..12, ncols in 1usize..12, seed in 0u64..1000) {
            let device = Device::unlimited();
            let m = Matrix::random_gaussian(nrows, ncols, Layout::ColMajor, seed, 0);
            let tt = m.transpose(&device).transpose(&device);
            prop_assert!(m.max_abs_diff(&tt).unwrap() == 0.0);
        }
    }
}
