//! # sketch-la
//!
//! Dense linear algebra substrate for the GPU CountSketch reproduction — the stand-in
//! for the cuBLAS and cuSOLVER routines the paper calls (Section 6.1):
//!
//! * [`Matrix`] — a dense, column-major or row-major `f64` matrix (the paper is explicit
//!   about layouts: the CountSketch wants row-major `A`, everything downstream wants
//!   column-major),
//! * BLAS-1/2/3 kernels — [`blas1`], [`blas2`] (GEMV, TRSV), [`blas3`] (GEMM, SYRK,
//!   TRSM), all multi-threaded and all reporting exact byte/flop costs to the simulated
//!   device; the level-3 kernels share the cache-blocked packing/microkernel
//!   infrastructure in [`gebp`],
//! * [`qr`] — Householder QR (GEQRF), application of the reflectors (ORMQR) and
//!   economy-QR helpers,
//! * [`chol`] — Cholesky factorisation (POTRF),
//! * [`svd`] — small dense SVD via one-sided Jacobi (GeSVDJ substitute), the
//!   factorisation the randomized low-rank pipeline reduces to,
//! * [`cond`] — construction of test matrices with a prescribed condition number
//!   (Figure 8) and randomized condition estimation,
//! * [`norms`] — vector/matrix norms and residual helpers.
//!
//! Every routine takes a [`sketch_gpu_sim::Device`] handle and records the cost it would
//! incur on the modelled GPU, which is how the benchmark harness regenerates the paper's
//! runtime breakdowns without CUDA hardware.
//!
//! ```
//! use sketch_gpu_sim::Device;
//! use sketch_la::{Matrix, blas3};
//!
//! let device = Device::h100();
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = blas3::gemm(&device, 1.0, &a, &b, 0.0, None).unwrap();
//! assert_eq!(c.get(1, 0), 3.0);
//! ```

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod chol;
pub mod cond;
pub mod error;
pub mod gebp;
pub mod matrix;
pub mod norms;
pub mod qr;
pub mod svd;

pub use error::LaError;
pub use matrix::{Layout, Matrix, MatrixViewMut, Op};
pub use qr::QrFactors;
pub use svd::{jacobi_svd, SmallSvd};
