//! Error type shared by the linear algebra routines.

use std::fmt;

/// Errors returned by the dense linear algebra substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LaError {
    /// Operand dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Name of the routine that rejected the operands.
        op: &'static str,
        /// Human readable description of the mismatch.
        detail: String,
    },
    /// Cholesky factorisation encountered a non-positive pivot: the matrix is not
    /// (numerically) positive definite.  This is exactly how the normal equations fail
    /// in Figure 8 once `κ(A)` exceeds `u^{-1/2}`.
    NotPositiveDefinite {
        /// Column at which the factorisation broke down.
        column: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// A triangular solve hit a zero (or subnormal) diagonal entry.
    SingularTriangular {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// The routine requires a matrix with at least as many rows as columns.
    NotOverdetermined {
        /// Number of rows provided.
        rows: usize,
        /// Number of columns provided.
        cols: usize,
    },
}

impl fmt::Display for LaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaError::DimensionMismatch { op, detail } => {
                write!(f, "{op}: dimension mismatch ({detail})")
            }
            LaError::NotPositiveDefinite { column, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at column {column}"
            ),
            LaError::SingularTriangular { index } => {
                write!(f, "triangular matrix is singular at diagonal index {index}")
            }
            LaError::NotOverdetermined { rows, cols } => {
                write!(f, "routine requires rows >= cols, got {rows} x {cols}")
            }
        }
    }
}

impl std::error::Error for LaError {}

/// Convenience constructor for dimension mismatch errors.
pub(crate) fn dim_err(op: &'static str, detail: impl Into<String>) -> LaError {
    LaError::DimensionMismatch {
        op,
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = dim_err("gemm", "A is 2x3 but B is 4x5");
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("2x3"));

        let e = LaError::NotPositiveDefinite {
            column: 3,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("positive definite"));

        let e = LaError::SingularTriangular { index: 0 };
        assert!(e.to_string().contains("singular"));

        let e = LaError::NotOverdetermined { rows: 2, cols: 5 };
        assert!(e.to_string().contains("rows >= cols"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LaError::SingularTriangular { index: 1 },
            LaError::SingularTriangular { index: 1 }
        );
        assert_ne!(
            LaError::SingularTriangular { index: 1 },
            LaError::SingularTriangular { index: 2 }
        );
    }
}
