//! Small dense singular value decomposition via one-sided Jacobi rotations.
//!
//! The randomized low-rank pipeline in `sketch-lowrank` reduces every SVD to a *small*
//! dense factorisation: after the rangefinder has compressed `A ∈ R^{m x n}` to
//! `B = AᵀQ ∈ R^{n x ℓ}` with `ℓ = k + p ≪ m`, the remaining work is an SVD of a thin
//! matrix.  cuSOLVER would use `GeSVDJ` (its Jacobi SVD) for exactly this shape; this
//! module is the stand-in.
//!
//! One-sided Jacobi (Hestenes) applies plane rotations from the right until the columns
//! of `W = A·J₁·J₂·…` are mutually orthogonal; then `σ_j = ‖w_j‖₂`, `U = W·diag(1/σ)`
//! and `V` is the accumulated product of rotations, giving `A = U Σ Vᵀ`.  It is simple,
//! backward stable, and computes small singular values to high relative accuracy —
//! which matters because the low-rank tests pin `σ_{k+1}`-sized error bounds.

use crate::blas1::{dot_unrecorded, nrm2_unrecorded};
use crate::error::{dim_err, LaError};
use crate::matrix::{Layout, Matrix};
use sketch_gpu_sim::{Device, KernelCost};

/// The thin SVD `A = U Σ Vᵀ` of an `m x n` matrix with `m >= n`.
///
/// `u` is `m x n` with orthonormal columns (columns belonging to zero singular values
/// are zero), `s` holds the `n` singular values in descending order, and `vt` is the
/// `n x n` orthogonal factor, stored transposed.
#[derive(Debug, Clone)]
pub struct SmallSvd {
    /// Left singular vectors (`m x n`, orthonormal columns for nonzero `s`).
    pub u: Matrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors, transposed (`n x n`).
    pub vt: Matrix,
}

impl SmallSvd {
    /// Rebuild `U Σ Vᵀ` (used by tests and reconstruction helpers).
    pub fn reconstruct(&self, device: &Device) -> Result<Matrix, LaError> {
        let mut us = self.u.clone();
        for (j, &sj) in self.s.iter().enumerate() {
            for v in us.col_mut(j).expect("col-major").iter_mut() {
                *v *= sj;
            }
        }
        crate::blas3::gemm(device, 1.0, &us, &self.vt, 0.0, None)
    }
}

/// Maximum number of Jacobi sweeps before giving up; convergence is typically reached
/// in 5–10 sweeps for the well-scaled matrices the low-rank pipeline produces.
const MAX_SWEEPS: usize = 60;

/// Relative off-diagonal threshold below which a column pair counts as orthogonal.
const JACOBI_TOL: f64 = 1e-14;

/// Compute the thin SVD of `a` (`m x n`, `m >= n`) with one-sided Jacobi rotations.
///
/// Returns [`LaError::NotOverdetermined`] when `m < n`; callers with wide matrices
/// factor the transpose and swap the roles of `U` and `V` (see `sketch-lowrank`).
pub fn jacobi_svd(device: &Device, a: &Matrix) -> Result<SmallSvd, LaError> {
    let m = a.nrows();
    let n = a.ncols();
    if m < n {
        return Err(LaError::NotOverdetermined { rows: m, cols: n });
    }
    if n == 0 {
        return Err(dim_err("jacobi_svd", "matrix has zero columns"));
    }

    let mut w = a.to_layout(device, Layout::ColMajor);
    let mut v = Matrix::identity(n);
    let mut sweeps_run = 0;

    for _ in 0..MAX_SWEEPS {
        sweeps_run += 1;
        let mut rotated = false;
        for p in 0..n {
            for q in p + 1..n {
                let (alpha, beta, gamma) = {
                    let wp = w.col(p).expect("col-major");
                    let wq = w.col(q).expect("col-major");
                    (
                        dot_unrecorded(wp, wp),
                        dot_unrecorded(wq, wq),
                        dot_unrecorded(wp, wq),
                    )
                };
                if gamma == 0.0 || gamma.abs() <= JACOBI_TOL * (alpha * beta).sqrt() {
                    continue;
                }
                rotated = true;
                // Rotation annihilating wpᵀwq (Rutishauser's stable formulas).
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_columns(&mut w, p, q, c, s);
                rotate_columns(&mut v, p, q, c, s);
            }
        }
        if !rotated {
            break;
        }
    }

    // Extract singular values and sort them (with their vectors) in descending order.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n)
        .map(|j| nrm2_unrecorded(w.col(j).expect("col-major")))
        .collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("finite norms"));

    let mut u = Matrix::zeros(m, n);
    let mut s = Vec::with_capacity(n);
    let mut vt = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        let sigma = norms[src];
        s.push(sigma);
        if sigma > 0.0 {
            let col = w.col(src).expect("col-major");
            let ucol = u.col_mut(dst).expect("col-major");
            for (ui, &wi) in ucol.iter_mut().zip(col.iter()) {
                *ui = wi / sigma;
            }
        }
        for i in 0..n {
            vt.set(dst, i, v.get(i, src));
        }
    }

    // Cost model: every sweep streams the n(n-1)/2 column pairs (two columns read,
    // two written, ~6m flops per rotation plus the 6m-flop Gram update).
    let (m64, n64, sw) = (m as u64, n as u64, sweeps_run as u64);
    let pair_cols = n64 * (n64.saturating_sub(1));
    device.record(KernelCost::new(
        KernelCost::f64_bytes(sw * pair_cols * m64),
        KernelCost::f64_bytes(sw * pair_cols * m64),
        sw * pair_cols * 6 * m64,
        sw,
    ));

    Ok(SmallSvd { u, s, vt })
}

/// Apply the rotation `[c -s; s c]` to columns `p` and `q` of `m` (right-multiply).
fn rotate_columns(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let nrows = m.nrows();
    for i in 0..nrows {
        let a = m.get(i, p);
        let b = m.get(i, q);
        m.set(i, p, c * a - s * b);
        m.set(i, q, s * a + c * b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_op;
    use crate::cond::{geometric_singular_values, matrix_with_singular_values};
    use crate::matrix::Op;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::unlimited()
    }

    fn assert_orthonormal_columns(a: &Matrix, tol: f64) {
        let d = device();
        let gram = gemm_op(&d, 1.0, Op::Trans, a, Op::NoTrans, a, 0.0, None).unwrap();
        assert!(
            gram.max_abs_diff(&Matrix::identity(a.ncols())).unwrap() < tol,
            "columns not orthonormal"
        );
    }

    #[test]
    fn svd_reconstructs_random_matrix() {
        let d = device();
        let a = Matrix::random_gaussian(30, 8, Layout::ColMajor, 1, 0);
        let svd = jacobi_svd(&d, &a).unwrap();
        let back = svd.reconstruct(&d).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-10);
        assert_orthonormal_columns(&svd.u, 1e-10);
        assert_orthonormal_columns(&svd.vt, 1e-10);
    }

    #[test]
    fn singular_values_are_descending_and_match_prescribed_spectrum() {
        let d = device();
        let sigma = geometric_singular_values(6, 1e4);
        let a = matrix_with_singular_values(&d, 40, 6, &sigma, 3).unwrap();
        let svd = jacobi_svd(&d, &a).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1]);
        }
        for (computed, expected) in svd.s.iter().zip(sigma.iter()) {
            assert!(
                (computed - expected).abs() < 1e-8 * expected.max(1.0),
                "{computed} vs {expected}"
            );
        }
    }

    #[test]
    fn rank_deficient_matrix_gets_zero_singular_values() {
        let d = device();
        // Two identical columns -> rank 2 out of 3.
        let a = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0],
            &[2.0, 2.0, 1.0],
            &[0.0, 0.0, 3.0],
            &[1.0, 1.0, -1.0],
        ]);
        let svd = jacobi_svd(&d, &a).unwrap();
        assert!(svd.s[2] < 1e-12, "smallest singular value {}", svd.s[2]);
        let back = svd.reconstruct(&d).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn identity_has_unit_singular_values() {
        let d = device();
        let svd = jacobi_svd(&d, &Matrix::identity(5)).unwrap();
        for s in &svd.s {
            assert!((s - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn zero_matrix_yields_all_zero_singular_values() {
        let d = device();
        let svd = jacobi_svd(&d, &Matrix::zeros(6, 3)).unwrap();
        assert_eq!(svd.s, vec![0.0; 3]);
    }

    #[test]
    fn wide_matrices_are_rejected() {
        let d = device();
        assert!(matches!(
            jacobi_svd(&d, &Matrix::zeros(2, 5)),
            Err(LaError::NotOverdetermined { rows: 2, cols: 5 })
        ));
    }

    #[test]
    fn svd_records_device_cost() {
        let d = device();
        let a = Matrix::random_gaussian(20, 4, Layout::ColMajor, 9, 0);
        let _ = jacobi_svd(&d, &a).unwrap();
        assert!(d.tracker().snapshot().flops > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_svd_reconstruction_and_orthogonality(
            m in 4usize..30,
            n in 1usize..6,
            seed in 0u64..500,
        ) {
            prop_assume!(m >= n);
            let d = device();
            let a = Matrix::random_gaussian(m, n, Layout::ColMajor, seed, 0);
            let svd = jacobi_svd(&d, &a).unwrap();
            let back = svd.reconstruct(&d).unwrap();
            prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-9);
            for w in svd.s.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }
}
