//! GEBP-style cache-blocked matrix-multiply infrastructure (GotoBLAS/BLIS shape).
//!
//! The dense level-3 kernels in [`crate::blas3`] are all driven by the same three
//! ingredients defined here:
//!
//! * **Packing** — `op(A)` is repacked into row panels of [`MR`] rows (`pack_a_panels`)
//!   and `op(B)` into column panels of [`NR`] columns (`pack_b_panels`), both laid out
//!   k-major so the microkernel streams them with unit stride.  Panels are zero-padded to
//!   full [`MR`]/[`NR`] multiples, which removes every edge case from the hot loop
//!   (padded lanes compute garbage that is simply never read back).
//! * **Microkernel** — [`microkernel`] keeps an `MR x NR` tile of accumulators in
//!   registers and performs one rank-1 update per `k` step.  Each accumulator is an
//!   independent dependence chain, so instruction-level parallelism comes from the tile
//!   width, not from splitting any single sum.
//! * **Blocking** — [`blocked_sums`] drives the microkernel over `KC x NC` cache blocks
//!   ([`BlockSizes`]): a `KC x NC` panel of packed B stays resident in L2 while row
//!   panels of packed A stream through it, which is what turns the naive kernel's
//!   `O(n/NC)`-fold re-reading of A into a handful of passes.
//!
//! # The accumulation-order contract
//!
//! Every output element is accumulated **in strictly ascending `k` order through a
//! single accumulator chain**.  Between `KC` blocks the partial sum is parked in the
//! f64 accumulation buffer and reloaded — an exact store/load, not a re-association —
//! so the floating-point result is a pure function of the problem shape `(m, k, n)`:
//!
//! * independent of `KC`/`NC` block-size tuning (partials are never regrouped),
//! * independent of `MR`/`NR` (each element owns its accumulator; tiles only decide
//!   which elements are *adjacent*, never how any one sum is ordered),
//! * independent of thread count (parallel tasks own disjoint row panels, and the rayon
//!   shim derives task boundaries from shape alone).
//!
//! This is what keeps every bitwise determinism gate in the workspace (1-vs-N threads,
//! 1/2/4/7-device sharding, fault recovery, tenant isolation) green on top of a tuned
//! kernel: tuning moves data, never arithmetic.

use crate::matrix::{Layout, Matrix, Op};
use rayon::prelude::*;

/// Microkernel tile height (rows of C per register tile).
pub const MR: usize = 8;

/// Microkernel tile width (columns of C per register tile).
pub const NR: usize = 4;

/// Cache block sizes for the packed panels.
///
/// Changing these moves cache boundaries only; by the accumulation-order contract the
/// computed bits are identical for every setting (pinned by proptest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Depth (`k` extent) of one packed block; `MR x KC` A panels and the `KC x NC`
    /// B block bound the inner loop's working set.
    pub kc: usize,
    /// Width (`n` extent) of one packed B block; sized so `KC x NC` doubles sit in L2.
    pub nc: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        // 8 x 256 x 8 B = 16 KiB per A panel (L1), 256 x 512 x 8 B = 1 MiB of packed B
        // (half of a typical 2 MiB L2).
        BlockSizes { kc: 256, nc: 512 }
    }
}

impl BlockSizes {
    /// Clamp to sane values: `kc >= 1`, `nc` a positive multiple of [`NR`].
    fn normalized(self) -> Self {
        BlockSizes {
            kc: self.kc.max(1),
            nc: self.nc.next_multiple_of(NR).max(NR),
        }
    }
}

/// Round `len` up to a multiple of `align`.
#[inline]
pub fn padded(len: usize, align: usize) -> usize {
    len.div_ceil(align) * align
}

/// Index of logical element `(i, j)` inside the panel-major accumulation buffer of a
/// product with `pn` padded columns: panel `i / MR`, then column-major within the panel.
#[inline(always)]
pub fn acc_index(pn: usize, i: usize, j: usize) -> usize {
    (i / MR) * (MR * pn) + j * MR + (i % MR)
}

/// `(row_stride, col_stride)` of `op(A)` over `a.as_slice()`.
#[inline]
fn strides_of(a: &Matrix, op: Op) -> (usize, usize) {
    let (rs, cs) = match a.layout() {
        Layout::RowMajor => (a.ncols(), 1),
        Layout::ColMajor => (1, a.nrows()),
    };
    match op {
        Op::NoTrans => (rs, cs),
        Op::Trans => (cs, rs),
    }
}

/// Pack `op(A)[0..m, pc..pc+kc]` into `MR`-row panels, k-major within each panel
/// (`apack[p * MR * kc + kk * MR + r]`), zero-padding rows `>= m`.
fn pack_a_panels(a: &Matrix, op_a: Op, m: usize, pc: usize, kc: usize, apack: &mut [f64]) {
    let (rs, cs) = strides_of(a, op_a);
    let data = a.as_slice();
    apack
        .par_chunks_mut(MR * kc)
        .enumerate()
        .for_each(|(p, panel)| {
            let i0 = p * MR;
            for kk in 0..kc {
                let col_base = (pc + kk) * cs;
                let dst = &mut panel[kk * MR..kk * MR + MR];
                for (r, slot) in dst.iter_mut().enumerate() {
                    let i = i0 + r;
                    *slot = if i < m { data[i * rs + col_base] } else { 0.0 };
                }
            }
        });
}

/// Pack `op(B)[pc..pc+kc, jc..jc+ncb]` into `NR`-column panels, k-major within each
/// panel (`bpack[q * NR * kc + kk * NR + c]`), zero-padding columns `>= n`.
fn pack_b_panels(
    b: &Matrix,
    op_b: Op,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    bpack: &mut [f64],
) {
    let (rs, cs) = strides_of(b, op_b);
    let data = b.as_slice();
    bpack
        .par_chunks_mut(NR * kc)
        .enumerate()
        .for_each(|(q, panel)| {
            let j0 = jc + q * NR;
            for kk in 0..kc {
                let row_base = (pc + kk) * rs;
                let dst = &mut panel[kk * NR..kk * NR + NR];
                for (c, slot) in dst.iter_mut().enumerate() {
                    let j = j0 + c;
                    *slot = if j < n { data[row_base + j * cs] } else { 0.0 };
                }
            }
        });
}

/// Register-tiled inner kernel: `tile (MR x NR) <- tile ± ap · bp` over `kc` steps.
///
/// `tile` is a contiguous `MR * NR` slice (column-major within the tile).  The current
/// tile values are loaded into a register accumulator array, updated once per `k` step
/// in ascending order, and stored back — the exact-partial park/reload that makes the
/// result independent of how `k` is split into blocks.
#[inline(always)]
pub fn microkernel<const SUB: bool>(kc: usize, ap: &[f64], bp: &[f64], tile: &mut [f64]) {
    debug_assert_eq!(tile.len(), MR * NR);
    debug_assert!(ap.len() >= kc * MR);
    debug_assert!(bp.len() >= kc * NR);
    let mut acc = [[0.0f64; MR]; NR];
    for (c, col) in acc.iter_mut().enumerate() {
        col.copy_from_slice(&tile[c * MR..(c + 1) * MR]);
    }
    // SAFETY: slice lengths are checked by the debug_asserts above and guaranteed by
    // the packers (panels are always full MR/NR multiples).
    unsafe {
        for kk in 0..kc {
            let a = ap.get_unchecked(kk * MR..kk * MR + MR);
            let b = bp.get_unchecked(kk * NR..kk * NR + NR);
            for (c, col) in acc.iter_mut().enumerate() {
                let bc = *b.get_unchecked(c);
                for (r, slot) in col.iter_mut().enumerate() {
                    let prod = *a.get_unchecked(r) * bc;
                    if SUB {
                        *slot -= prod;
                    } else {
                        *slot += prod;
                    }
                }
            }
        }
    }
    for (c, col) in acc.iter().enumerate() {
        tile[c * MR..(c + 1) * MR].copy_from_slice(col);
    }
}

/// Compute the raw products `op(A) · op(B)` into a panel-major accumulation buffer.
///
/// Returns a `padded(m, MR) * padded(n, NR)` buffer indexed by [`acc_index`]; callers
/// apply `alpha`/`beta` (and read only the valid `m x n` region) in their epilogue.
/// With `upper_only`, register tiles lying strictly below the diagonal are skipped —
/// the SYRK path, which halves the executed flops for a Gram matrix.
pub fn blocked_sums(
    op_a: Op,
    a: &Matrix,
    op_b: Op,
    b: &Matrix,
    blocks: BlockSizes,
    upper_only: bool,
) -> Vec<f64> {
    let blocks = blocks.normalized();
    let m = op_a.rows(a);
    let k = op_a.cols(a);
    let n = op_b.cols(b);
    debug_assert_eq!(k, op_b.rows(b), "caller validates inner dimensions");
    let pm = padded(m.max(1), MR);
    let pn = padded(n.max(1), NR);
    let mut acc = vec![0.0f64; pm * pn];
    if m == 0 || n == 0 || k == 0 {
        return acc;
    }

    let mut apack = vec![0.0f64; pm * blocks.kc.min(k)];
    let mut bpack = vec![0.0f64; blocks.nc.min(pn) * blocks.kc.min(k)];

    let mut jc = 0;
    while jc < pn {
        let ncb = blocks.nc.min(pn - jc);
        let mut pc = 0;
        while pc < k {
            let kcb = blocks.kc.min(k - pc);
            pack_a_panels(a, op_a, m, pc, kcb, &mut apack[..pm * kcb]);
            pack_b_panels(b, op_b, n, pc, kcb, jc, &mut bpack[..ncb * kcb]);
            let apack = &apack[..pm * kcb];
            let bpack = &bpack[..ncb * kcb];
            // One parallel sweep per (jc, pc) block: tasks own disjoint row panels, and
            // the serial pc loop keeps every element's partial applied in ascending k.
            acc.par_chunks_mut(MR * pn)
                .enumerate()
                .for_each(|(p, chunk)| {
                    let ap = &apack[p * MR * kcb..(p + 1) * MR * kcb];
                    for q in 0..ncb / NR {
                        let jcol = jc + q * NR;
                        // SYRK: skip tiles whose every element is strictly below the
                        // diagonal (the epilogue mirrors the upper triangle instead).
                        if upper_only && p * MR > jcol + NR - 1 {
                            continue;
                        }
                        let bp = &bpack[q * NR * kcb..(q + 1) * NR * kcb];
                        let tile = &mut chunk[jcol * MR..jcol * MR + MR * NR];
                        microkernel::<false>(kcb, ap, bp, tile);
                    }
                });
            pc += kcb;
        }
        jc += ncb;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_rounds_up() {
        assert_eq!(padded(0, 8), 0);
        assert_eq!(padded(1, 8), 8);
        assert_eq!(padded(8, 8), 8);
        assert_eq!(padded(9, 4), 12);
    }

    #[test]
    fn acc_index_covers_panel_layout() {
        // 2 panels of 8 rows, 4 padded columns.
        let pn = 4;
        assert_eq!(acc_index(pn, 0, 0), 0);
        assert_eq!(acc_index(pn, 7, 0), 7);
        assert_eq!(acc_index(pn, 0, 1), 8);
        assert_eq!(acc_index(pn, 8, 0), MR * pn);
    }

    #[test]
    fn microkernel_sub_is_negated_add() {
        let kc = 5;
        let ap: Vec<f64> = (0..kc * MR).map(|i| (i as f64 * 0.37).sin()).collect();
        let bp: Vec<f64> = (0..kc * NR).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut add_tile = vec![0.0; MR * NR];
        let mut sub_tile = vec![0.0; MR * NR];
        microkernel::<false>(kc, &ap, &bp, &mut add_tile);
        microkernel::<true>(kc, &ap, &bp, &mut sub_tile);
        for (x, y) in add_tile.iter().zip(&sub_tile) {
            assert_eq!(x.to_bits(), (-y).to_bits());
        }
    }

    #[test]
    fn blocked_sums_matches_ascending_k_reference() {
        let a = Matrix::random_gaussian(13, 9, Layout::RowMajor, 3, 0);
        let b = Matrix::random_gaussian(9, 7, Layout::ColMajor, 3, 1);
        let acc = blocked_sums(
            Op::NoTrans,
            &a,
            Op::NoTrans,
            &b,
            BlockSizes::default(),
            false,
        );
        let pn = padded(7, NR);
        for i in 0..13 {
            for j in 0..7 {
                let mut want = 0.0f64;
                for kk in 0..9 {
                    want += a.get(i, kk) * b.get(kk, j);
                }
                let got = acc[acc_index(pn, i, j)];
                assert_eq!(got.to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn blocked_sums_bits_do_not_depend_on_block_sizes() {
        let a = Matrix::random_gaussian(30, 50, Layout::ColMajor, 9, 0);
        let b = Matrix::random_gaussian(50, 11, Layout::RowMajor, 9, 1);
        let base = blocked_sums(
            Op::NoTrans,
            &a,
            Op::NoTrans,
            &b,
            BlockSizes::default(),
            false,
        );
        for blocks in [
            BlockSizes { kc: 1, nc: 4 },
            BlockSizes { kc: 7, nc: 8 },
            BlockSizes { kc: 64, nc: 4096 },
        ] {
            let other = blocked_sums(Op::NoTrans, &a, Op::NoTrans, &b, blocks, false);
            assert!(
                base.iter()
                    .zip(&other)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "bits changed under {blocks:?}"
            );
        }
    }
}
