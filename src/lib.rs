//! # gpu-countsketch
//!
//! Umbrella crate for the reproduction of *"A High Performance GPU CountSketch
//! Implementation and Its Application to Multisketching and Least Squares Problems"*
//! (Higgins, Boman, Yamazaki — SC 2025) on a simulated GPU device model.
//!
//! This crate simply re-exports the workspace's public API under one roof so the
//! examples and integration tests can use a single dependency:
//!
//! * [`sketch`] — the sketch operators (CountSketch, Gaussian, SRHT, multisketch),
//! * [`lsq`] — the least squares solvers (normal equations, sketch-and-solve,
//!   rand_cholQR, QR),
//! * [`lowrank`] — randomized low-rank approximation (rangefinder, RSVD,
//!   single-pass streaming SVD, Nyström),
//! * [`la`] — the dense linear algebra substrate,
//! * [`sparse`] — the sparse (SpMM) substrate,
//! * [`gpu`] — the simulated device, cost counters and roofline model,
//! * [`rng`] — the Philox counter-based random number generator,
//! * [`dist`] — the block-row distributed sketching simulation,
//! * [`serve`] — the multi-tenant job engine that co-schedules sketch
//!   pipelines on a shared [`DevicePool`](sketch_gpu_sim::DevicePool)
//!   (admission control, fair queueing, per-tenant ledgers).
//!
//! ## Quickstart
//!
//! Sketches are described declaratively with [`SketchSpec`](sketch_core::SketchSpec)
//! (or a multi-stage [`Pipeline`](sketch_core::Pipeline)) and built on a device; the
//! `2n`/`2n²` embedding-dimension conventions of the paper are carried as rules that
//! resolve against the operand width.
//!
//! ```
//! use gpu_countsketch::prelude::*;
//!
//! let device = Device::h100();
//! let d = 4096;
//! let n = 8;
//! let a = Matrix::random_gaussian(d, n, Layout::RowMajor, 1, 0);
//!
//! // CountSketch with the paper's k = 2n² convention.
//! let spec = SketchSpec::countsketch(d, EmbeddingDim::Square(2), 2);
//! let sketch = spec.build_for(&device, n).unwrap();
//! let y = sketch.apply_matrix(&device, &a).unwrap();
//! assert_eq!(y.nrows(), 2 * n * n);
//!
//! // The Count-Gauss multisketch is the two-stage pipeline, straight to 2n rows —
//! // and the spec serializes, so a JSON file can name this whole experiment.
//! let plan = Pipeline::count_gauss(d, EmbeddingDim::Square(2), EmbeddingDim::Ratio(2), 3);
//! let multi = plan.build_for(&device, n).unwrap();
//! let z = multi.apply_matrix(&device, &a).unwrap();
//! assert_eq!(z.nrows(), 2 * n);
//! assert_eq!(Pipeline::from_json(&plan.to_json()).unwrap(), plan);
//! println!("modelled H100 time: {:.3} ms",
//!          device.model_time(&device.tracker().snapshot()) * 1e3);
//! ```
//!
//! ## One engine, any pool size, dense or sparse
//!
//! Every driver in the workspace targets a single execution engine: the pipelined
//! executor of `sketch-dist`, fed by a [`DevicePool`](sketch_gpu_sim::DevicePool).
//! *Serial execution is a pool of one* ([`DevicePool::single`](sketch_gpu_sim::DevicePool::single)
//! runs each stage as one bare device launch with zero communication); larger
//! pools shard each stage along its `ShardAxis`, dispatch round-robin, and
//! overlap collectives with the next shard's compute.  The result stays
//! **bit-for-bit identical** at every pool size, for dense *and* CSR operands
//! (see `ARCHITECTURE.md` for the `ShardAxis` contract behind that).
//!
//! ```
//! use gpu_countsketch::prelude::*;
//!
//! let d = 1 << 12;
//! let a = Matrix::random_gaussian(d, 8, Layout::RowMajor, 1, 0);
//! let plan = Pipeline::single(SketchSpec::countsketch(d, EmbeddingDim::Square(2), 7));
//!
//! // Four modelled H100s on NVLink, two shards per device.
//! let pool = DevicePool::h100(4);
//! let run = pipelined_sketch(&pool, &a, &plan, &ExecutorOptions::default()).unwrap();
//!
//! // Serial is just the degenerate pool: same engine, same bits.
//! let serial_pool = DevicePool::single(DeviceSpec::h100());
//! let serial = pipelined_sketch(&serial_pool, &a, &plan, &ExecutorOptions::default()).unwrap();
//! assert_eq!(run.result.max_abs_diff(&serial.result).unwrap(), 0.0); // same bits
//! assert!(run.pipelined_seconds < run.serial_seconds);               // overlap won
//! assert_eq!(run.utilizations().len(), 4);
//!
//! // The workload drivers ride the same engine with a `pool` argument.
//! let problem = LsqProblem::easy(pool.device(0), 1 << 12, 4, 3).unwrap();
//! let big = solve(&pool, &problem, Method::CountSketch, 3).unwrap();
//! let one = solve(&serial_pool, &problem, Method::CountSketch, 3).unwrap();
//! assert_eq!(big.x, one.x); // bit-identical across pool sizes
//! ```

pub use sketch_core as sketch;
pub use sketch_dist as dist;
pub use sketch_gpu_sim as gpu;
pub use sketch_la as la;
pub use sketch_lowrank as lowrank;
pub use sketch_lsq as lsq;
pub use sketch_obs as obs;
pub use sketch_rng as rng;
pub use sketch_serve as serve;
pub use sketch_sparse as sparse;

/// The most commonly used types, importable with one `use` line.
pub mod prelude {
    pub use sketch_core::{
        CountSketch, EmbeddingDim, Error, FrequencyCountSketch, GaussianSketch, HashCountSketch,
        JsonValue, MultiSketch, Operand, Pipeline, ShardAxis, SketchError, SketchKind,
        SketchOperator, SketchSpec, Srht,
    };
    pub use sketch_dist::{
        distributed_countsketch, distributed_gaussian, distributed_multisketch, distributed_sketch,
        pipelined_sketch, BlockRowMatrix, CommCost, DeviceFailure, ExecutorOptions, FaultReport,
        PipelinedRun, Schedule,
    };
    pub use sketch_gpu_sim::{
        Device, DevicePool, DeviceSpec, FaultPlan, FaultSpec, InterconnectSpec, KernelCost, Phase,
        Profiler, RunBreakdown, StreamKind, StreamSet, Timeline,
    };
    pub use sketch_la::{Layout, Matrix, Op};
    pub use sketch_lowrank::{
        estimate_range_error, nystrom, range_finder, rsvd, streaming_svd, CountingBlockSource,
        LowRankParams, MatVecLike, NystromResult, RangeSketch, SvdResult,
    };
    pub use sketch_lsq::{
        rand_cholqr_least_squares, sketch_and_solve, solve, LsqProblem, LsqSolution, Method,
    };
    pub use sketch_rng::{PhiloxRng, StreamFactory};
    pub use sketch_serve::{
        AdmissionController, JobQueue, JobSpec, OperandSpec, Scheduler, ServeEngine, TenantLimits,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_end_to_end_pipeline() {
        let pool = DevicePool::single(DeviceSpec::h100());
        let device = pool.device(0);
        let problem = LsqProblem::easy(device, 1024, 4, 1).unwrap();
        let sol = solve(&pool, &problem, Method::MultiSketch, 2).unwrap();
        assert_eq!(sol.x.len(), 4);
        assert!(sol.relative_residual(device, &problem).unwrap().is_finite());
    }
}
