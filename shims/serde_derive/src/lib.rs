//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` shim.
//!
//! The workspace derives serde traits on a few config/report structs but never
//! actually serializes them in this offline container, so the derives can
//! expand to nothing.  `attributes(serde)` keeps `#[serde(skip)]`-style field
//! attributes accepted.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and expands to
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and expands
/// to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
