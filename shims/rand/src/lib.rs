//! Trait-only shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The workspace implements its own Philox generator; all it needs from `rand`
//! is the `RngCore`/`SeedableRng` trait vocabulary so `PhiloxRng` can plug into
//! code written against the standard traits.

use std::fmt;

/// Error type for fallible RNG operations (never produced by this workspace's
/// generators, which are infallible).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core random number generator interface (rand 0.8 shape).
pub trait RngCore {
    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// A generator that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, spreading it across the seed bytes.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        for (i, slot) in bytes.iter_mut().enumerate() {
            *slot = (state >> (8 * (i % 8))) as u8;
        }
        Self::from_seed(seed)
    }
}

/// Types [`Rng::gen`] can produce (stand-in for rand's `Standard` sampling).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension methods over [`RngCore`] (tiny subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_round_trips_through_seed_bytes() {
        let mut a = Lcg::seed_from_u64(42);
        let mut b = Lcg::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Lcg::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
