//! Sampling timing shim for the subset of `criterion` this workspace uses.
//!
//! Each `bench_function` runs its routine [`WARMUP_ITERS`] times untimed (cache
//! and pool warm-up, discarded), then collects per-iteration wall-clock samples:
//! at least [`MIN_SAMPLES`], continuing until either [`MAX_SAMPLES`] or the
//! [`SAMPLE_BUDGET`] time budget is reached.  Both the **minimum** (the least
//! noise-contaminated estimate of the routine's true cost) and the **median**
//! (robust central tendency) are reported; `nanos_per_iter` is the median.
//! This replaces the old mean-of-2, which was too noisy for wall-clock gating
//! in `BENCH_walltime.json`.

use std::fmt;
use std::time::{Duration, Instant};

/// Untimed executions before sampling starts (results discarded).
pub const WARMUP_ITERS: u32 = 2;

/// Minimum number of timed samples per benchmark.
pub const MIN_SAMPLES: usize = 5;

/// Maximum number of timed samples per benchmark.
pub const MAX_SAMPLES: usize = 31;

/// Soft time budget for the sampling loop; once `MIN_SAMPLES` have been taken,
/// sampling stops when the budget is exhausted.
pub const SAMPLE_BUDGET: Duration = Duration::from_millis(100);

/// Identifier for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter label.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing harness handed to benchmark closures.
#[derive(Default)]
pub struct Bencher {
    nanos_per_iter: f64,
    min_nanos: f64,
    samples: usize,
}

impl Bencher {
    /// Run `routine` [`WARMUP_ITERS`] times untimed, then sample it per
    /// iteration until the sample count/budget rules are met.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let mut samples: Vec<f64> = Vec::with_capacity(MIN_SAMPLES);
        let budget_start = Instant::now();
        while samples.len() < MAX_SAMPLES
            && (samples.len() < MIN_SAMPLES || budget_start.elapsed() < SAMPLE_BUDGET)
        {
            let start = Instant::now();
            std::hint::black_box(routine());
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.samples = samples.len();
        self.min_nanos = samples[0];
        self.nanos_per_iter = samples[samples.len() / 2];
    }

    /// Median nanoseconds per iteration over the timed samples.
    pub fn median_nanos(&self) -> f64 {
        self.nanos_per_iter
    }

    /// Minimum nanoseconds per iteration over the timed samples.
    pub fn min_nanos(&self) -> f64 {
        self.min_nanos
    }

    /// Number of timed samples taken.
    pub fn sample_count(&self) -> usize {
        self.samples
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs a fixed iteration
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark and print its median and minimum times.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        println!(
            "bench {:<50} {:>12.1} ns/iter (median, min {:.1}, n={})",
            format!("{}/{}", self.name, id),
            bencher.median_nanos(),
            bencher.min_nanos(),
            bencher.sample_count()
        );
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevent the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` passes flags the shim does not need to
            // interpret: every bench always runs exactly once per timing loop.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut b = Bencher::default();
        let mut count = 0u32;
        b.iter(|| {
            count += 1;
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        assert_eq!(count as usize, WARMUP_ITERS as usize + b.sample_count());
        assert!(b.sample_count() >= MIN_SAMPLES);
        assert!(b.sample_count() <= MAX_SAMPLES);
        assert!(b.min_nanos() > 0.0);
        assert!(b.median_nanos() >= b.min_nanos());
    }

    #[test]
    fn long_routines_stop_at_the_budget() {
        let mut b = Bencher::default();
        b.iter(|| std::thread::sleep(std::time::Duration::from_millis(25)));
        // 25 ms per sample blows the 100 ms budget right after MIN_SAMPLES.
        assert_eq!(b.sample_count(), MIN_SAMPLES);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        let mut ran = false;
        group
            .sample_size(10)
            .bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
