//! Single-shot timing shim for the subset of `criterion` this workspace uses.
//!
//! Each `bench_function` runs its routine once to warm up and twice timed,
//! printing the mean wall-clock time.  That is enough for the CI smoke pass
//! (`cargo bench -- --test` semantics: every bench executes, no statistics)
//! and for eyeballing relative kernel costs locally.

use std::fmt;
use std::time::Instant;

/// Number of timed executions per benchmark (after one warm-up run).
const TIMED_ITERS: u32 = 2;

/// Identifier for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter label.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The timing harness handed to benchmark closures.
#[derive(Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Run `routine` once for warm-up and `TIMED_ITERS` times timed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / TIMED_ITERS as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs a fixed iteration
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark and print its mean time.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        println!(
            "bench {:<50} {:>12.1} ns/iter",
            format!("{}/{}", self.name, id),
            bencher.nanos_per_iter
        );
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevent the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` passes flags the shim does not need to
            // interpret: every bench always runs exactly once per timing loop.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut b = Bencher::default();
        let mut count = 0u32;
        b.iter(|| {
            count += 1;
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        assert_eq!(count, 1 + TIMED_ITERS);
        assert!(b.nanos_per_iter > 0.0);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        let mut ran = false;
        group
            .sample_size(10)
            .bench_function(BenchmarkId::new("f", "p"), |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
