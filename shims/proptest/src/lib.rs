//! Deterministic shim for the subset of `proptest` this workspace uses.
//!
//! The workspace's property tests all draw their inputs from integer-range
//! strategies (`lo..hi`).  This shim keeps the `proptest! { fn f(x in 0..10) }`
//! syntax compiling and runs each property over a deterministic case schedule:
//! case 0 pins every argument to the range start, case 1 to the range end, and
//! the remaining cases draw from a splitmix64 stream salted per argument so
//! different arguments decorrelate.  There is no shrinking — a failing case
//! panics with the argument values baked into the assertion message.

use std::ops::Range;

/// Subset of proptest's run configuration: just the case count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property is executed with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub const fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; the shim's sampler is cheap but
        // the bodies under test are not, so keep the default modest.
        Self { cases: 16 }
    }
}

/// splitmix64 — the standard 64-bit mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A value source for one property argument.
///
/// `case` is the property iteration index; `salt` distinguishes the arguments
/// of one property from each other so they do not draw identical values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Produce the value for (`case`, `salt`).
    fn sample_case(&self, case: u32, salt: u64) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_case(&self, case: u32, salt: u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let lo = self.start as i128;
                let hi = self.end as i128;
                match case {
                    0 => self.start,
                    1 => (hi - 1) as $t,
                    _ => {
                        let span = (hi - lo) as u128;
                        let draw = splitmix64((case as u64) ^ salt) as u128 % span;
                        (lo + draw as i128) as $t
                    }
                }
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Reject the current case when its inputs don't satisfy a precondition.
///
/// Inside the shim each case body runs in its own closure, so rejecting is an
/// early `return` from that closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Define property tests: `proptest! { #[test] fn f(x in 0usize..10) { .. } }`.
///
/// An optional leading `#![proptest_config(..)]` sets the case count for every
/// property in the block.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases.max(2);
                for __case in 0..__cases {
                    let mut __salt: u64 = 0;
                    $(
                        __salt = __salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let $arg = $crate::Strategy::sample_case(&($strat), __case, __salt);
                    )+
                    // One closure per case so `prop_assume!` can reject the
                    // case with an early return, even from nested scopes.
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $body
                    })();
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptest!(@body ($cfg) $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptest!(@body ($crate::ProptestConfig::default()) $($rest)+);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_pins_endpoints_then_samples_inside() {
        let s = 3usize..10;
        assert_eq!(s.sample_case(0, 1), 3);
        assert_eq!(s.sample_case(1, 1), 9);
        for case in 2..100 {
            let v = s.sample_case(case, 1);
            assert!((3..10).contains(&v), "case {case} produced {v}");
        }
    }

    #[test]
    fn salts_decorrelate_arguments() {
        let s = 0u64..1_000_000;
        let same = (2..50)
            .filter(|&c| s.sample_case(c, 1) == s.sample_case(c, 2))
            .count();
        assert!(same < 5, "{same} of 48 cases collided across salts");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn the_macro_itself_works(a in 1usize..20, b in 0u64..100) {
            prop_assert!((1..20).contains(&a));
            prop_assert!(b < 100);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
        }
    }

    proptest! {
        #[test]
        fn default_config_is_used_without_inner_attribute(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }
}
