//! Shim for the subset of `serde` this workspace uses: the two trait names and
//! their no-op derive macros.
//!
//! Nothing in the offline container serializes data, so the traits carry no
//! methods; they exist so `use serde::{Serialize, Deserialize}` and trait
//! bounds keep compiling against the same paths as the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
