//! The thread pool behind the parallel iterators: worker threads, the shared
//! injector deque, and the lifetime-erased batch jobs they claim work from.
//!
//! # Design
//!
//! Every data-parallel operation in this crate bottoms out in
//! [`Registry::run_batch`]: a *batch* of `n_tasks` indexed tasks whose body is
//! a `Fn(usize)` closure.  The calling thread publishes the batch on a shared
//! injector deque, wakes the pool's workers, and then **participates itself**,
//! so a pool of `t` threads always has `t` claimants (the caller plus `t - 1`
//! workers).  Tasks are claimed with a single `fetch_add` on the batch's claim
//! cursor — the chunk-deque discipline: whichever thread is idle steals the
//! next unclaimed chunk, so load balancing is dynamic while the *chunk
//! boundaries themselves* are fixed by the caller and never depend on the
//! thread count (the determinism contract of the iterator layer).
//!
//! The caller blocks until every claimed task has completed, which is what
//! makes the lifetime erasure of the task body sound: the closure (and
//! everything it borrows) outlives all uses.  Worker panics are caught,
//! forwarded, and re-raised on the calling thread.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Cumulative process-wide pool activity, for the observability layer.
///
/// The counters are monotone and shared by every registry (global and
/// explicit pools alike): they describe how much fork-join work the process
/// has dispatched, not where it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Fork-join batches dispatched via `run_batch` (including serial ones).
    pub batches: u64,
    /// Individual tasks executed across all batches.
    pub tasks: u64,
    /// Tasks that ran inline on the calling thread via the serial fast path
    /// (pool of one, or a single-task batch) — no queueing, no stealing.
    pub inline_tasks: u64,
}

/// Batches dispatched so far (see [`PoolStats::batches`]).
static STAT_BATCHES: AtomicU64 = AtomicU64::new(0);
/// Tasks executed so far (see [`PoolStats::tasks`]).
static STAT_TASKS: AtomicU64 = AtomicU64::new(0);
/// Tasks run on the serial fast path (see [`PoolStats::inline_tasks`]).
static STAT_INLINE: AtomicU64 = AtomicU64::new(0);

/// Snapshot the cumulative pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        batches: STAT_BATCHES.load(Ordering::Relaxed),
        tasks: STAT_TASKS.load(Ordering::Relaxed),
        inline_tasks: STAT_INLINE.load(Ordering::Relaxed),
    }
}

/// The body of a batch, lifetime-erased.
///
/// # Safety invariant
///
/// The reference is only dereferenced for task indices claimed while the
/// originating [`Registry::run_batch`] call is still blocked; that call does
/// not return until `pending` reaches zero, so the borrow is always live.
struct TaskBody(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine) and
// the pointer itself is only shipped between threads, never mutated.
unsafe impl Send for TaskBody {}
unsafe impl Sync for TaskBody {}

/// One fork-join batch: `n_tasks` indexed tasks claimed via `next`.
struct Batch {
    /// Claim cursor: `fetch_add(1)` hands out task indices.
    next: AtomicUsize,
    /// Tasks not yet *completed* (claimed-and-finished decrements this).
    pending: AtomicUsize,
    /// Total number of tasks.
    n_tasks: usize,
    /// The erased task body.
    body: TaskBody,
    /// Completion signal: `done_cv` is notified under `done` when `pending`
    /// hits zero.
    done: Mutex<()>,
    done_cv: Condvar,
    /// First panic payload raised by any task, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    /// Claim and run tasks until the cursor is exhausted.  Returns once this
    /// thread can contribute nothing further (other claimants may still be
    /// running their tasks).
    fn work(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= self.n_tasks {
                return;
            }
            // SAFETY: `t < n_tasks` means the owning `run_batch` is still
            // blocked waiting for this task, so the body is live.
            let body = unsafe { &*self.body.0 };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(t))) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task: wake the owner.  Taking the lock orders the
                // notification after the owner's pending-check-then-wait.
                let _guard = self.done.lock().unwrap();
                self.done_cv.notify_all();
            }
        }
    }
}

/// Shared state of one thread pool: the injector deque plus worker plumbing.
pub(crate) struct Registry {
    /// Total parallelism: the calling thread plus `threads - 1` workers.
    threads: usize,
    /// Batches with potentially unclaimed tasks, oldest first.
    injector: Mutex<VecDeque<Arc<Batch>>>,
    /// Workers sleep here when the injector is empty.
    work_available: Condvar,
    /// Set by [`ThreadPool`]'s drop; workers exit at the next wakeup.
    shutdown: AtomicBool,
}

impl Registry {
    fn new(threads: usize) -> Arc<Self> {
        Arc::new(Self {
            threads: threads.max(1),
            injector: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Total parallelism of this registry (callers + workers).
    pub(crate) fn num_threads(&self) -> usize {
        self.threads
    }

    /// Pop one batch that may still have unclaimed tasks.
    fn try_steal(&self) -> Option<Arc<Batch>> {
        self.injector.lock().unwrap().pop_front()
    }

    /// Run `body(t)` for every `t in 0..n_tasks` across the pool, returning
    /// when all tasks have completed.  Task-index claiming is dynamic
    /// (work-stealing); completion and panic propagation are synchronous.
    pub(crate) fn run_batch(self: &Arc<Self>, n_tasks: usize, body: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        STAT_BATCHES.fetch_add(1, Ordering::Relaxed);
        STAT_TASKS.fetch_add(n_tasks as u64, Ordering::Relaxed);
        // Serial fast path: a pool of one (or a single task) runs inline with
        // no queueing, no per-task atomics and undisturbed panic semantics.
        if self.threads <= 1 || n_tasks == 1 {
            STAT_INLINE.fetch_add(n_tasks as u64, Ordering::Relaxed);
            for t in 0..n_tasks {
                body(t);
            }
            return;
        }

        // SAFETY: `run_batch` does not return until every task has completed,
        // so the erased borrow can never be used after it expires.
        let body: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        let batch = Arc::new(Batch {
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_tasks),
            n_tasks,
            body: TaskBody(body as *const _),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });

        // Publish one claim ticket per worker that could usefully join in.
        {
            let mut q = self.injector.lock().unwrap();
            for _ in 0..(self.threads - 1).min(n_tasks) {
                q.push_back(Arc::clone(&batch));
            }
        }
        self.work_available.notify_all();

        // The caller is a claimant too.
        batch.work();

        // Wait for stragglers, helping with *other* queued batches while the
        // last tasks of this one finish elsewhere (keeps nested parallelism
        // from idling the pool).
        loop {
            if batch.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            if let Some(other) = self.try_steal() {
                other.work();
                continue;
            }
            let guard = batch.done.lock().unwrap();
            if batch.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            // The timeout is a belt-and-braces fallback; the notify under
            // `done` makes lost wakeups impossible.
            let _ = batch
                .done_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }

        let payload = batch.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

/// Worker main loop: sleep on the injector, claim chunks from published
/// batches, repeat until shutdown.
fn worker_loop(registry: Arc<Registry>) {
    // Parallel operations issued from inside a task (nested parallelism) must
    // target this worker's own pool.
    CURRENT.with(|current| *current.borrow_mut() = Some(Arc::clone(&registry)));
    loop {
        let batch = {
            let mut q = registry.injector.lock().unwrap();
            loop {
                if registry.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(batch) = q.pop_front() {
                    break batch;
                }
                q = registry.work_available.wait(q).unwrap();
            }
        };
        batch.work();
    }
}

thread_local! {
    /// The registry parallel operations on this thread dispatch to: set for
    /// the duration of [`ThreadPool::install`] and permanently on workers.
    static CURRENT: std::cell::RefCell<Option<Arc<Registry>>> = const { std::cell::RefCell::new(None) };
}

/// The process-global registry, built lazily from `RAYON_NUM_THREADS` (or the
/// host's available parallelism) on first use.
static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Thread count for the lazily-built global pool.
fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Build a registry and spawn its `threads - 1` workers.
fn build_registry(
    threads: usize,
) -> std::io::Result<(Arc<Registry>, Vec<std::thread::JoinHandle<()>>)> {
    let registry = Registry::new(threads);
    let mut workers = Vec::with_capacity(threads.saturating_sub(1));
    for idx in 0..threads.saturating_sub(1) {
        let reg = Arc::clone(&registry);
        let handle = std::thread::Builder::new()
            .name(format!("rayon-shim-{idx}"))
            .spawn(move || worker_loop(reg))?;
        workers.push(handle);
    }
    Ok((registry, workers))
}

/// The registry the current thread should dispatch to: the installed pool if
/// inside [`ThreadPool::install`] (or on a worker), otherwise the global one.
pub(crate) fn current_registry() -> Arc<Registry> {
    if let Some(registry) = CURRENT.with(|c| c.borrow().clone()) {
        return registry;
    }
    Arc::clone(GLOBAL.get_or_init(|| {
        let (registry, workers) = build_registry(default_num_threads())
            .expect("failed to spawn global thread-pool workers");
        // Global workers live for the whole process; their handles are
        // intentionally detached.
        drop(workers);
        registry
    }))
}

/// Error returned when a [`ThreadPoolBuilder`] cannot construct a pool.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build failed: {}", self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicit [`ThreadPool`], mirroring rayon's API surface:
/// `ThreadPoolBuilder::new().num_threads(4).build()`.
///
/// A thread count of zero (the default) means "use `RAYON_NUM_THREADS`, or the
/// host's available parallelism".
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start a builder with the default (environment-driven) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool's total parallelism (the installing thread counts as one
    /// of the `n`).  Zero restores the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build an explicit pool with its own worker threads.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        let (registry, workers) = build_registry(threads).map_err(|e| ThreadPoolBuildError {
            message: e.to_string(),
        })?;
        Ok(ThreadPool { registry, workers })
    }

    /// Install the built pool as the process-global one.  Fails if the global
    /// pool was already initialised (by an earlier call or lazily by a
    /// parallel operation).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        let (registry, workers) = build_registry(threads).map_err(|e| ThreadPoolBuildError {
            message: e.to_string(),
        })?;
        drop(workers); // global workers are detached
        GLOBAL.set(registry).map_err(|_| ThreadPoolBuildError {
            message: "the global thread pool has already been initialized".into(),
        })
    }
}

/// An explicit thread pool with its own workers, shut down on drop.
///
/// [`ThreadPool::install`] redirects every parallel operation issued from the
/// closure (on this thread) to this pool — the mechanism the determinism suite
/// uses to compare 1-thread and N-thread executions bitwise within a single
/// process.
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `op` on the calling thread with this pool receiving all parallel
    /// work dispatched during the call.
    ///
    /// Divergence from rayon: the closure runs on the *calling* thread (rayon
    /// moves it onto a worker), so no `Send` bound is required — strictly more
    /// code compiles, with identical results.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<Registry>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT.with(|c| *c.borrow_mut() = self.0.take());
            }
        }
        let previous = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.registry)));
        let _restore = Restore(previous);
        op()
    }

    /// This pool's total parallelism.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shutdown.store(true, Ordering::Relaxed);
        // Wake sleepers so they observe the flag.
        {
            let _q = self.registry.injector.lock().unwrap();
            self.registry.work_available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
