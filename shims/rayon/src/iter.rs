//! Parallel iterators with **thread-count-independent chunk boundaries**.
//!
//! # The determinism contract
//!
//! Every adapter in this module cuts its input into tasks whose boundaries are
//! a pure function of the input *length* (and the caller's chunk size) — never
//! of the pool's thread count or of runtime scheduling.  Combined with the two
//! execution rules below, that makes every `par_*` entry point bit-for-bit
//! reproducible across thread counts:
//!
//! 1. **Disjoint writes** (`for_each` over `par_iter_mut` / `par_chunks_mut` /
//!    ranges): each output element is written by exactly one task, so the
//!    *order* in which tasks run cannot change the result at all.
//! 2. **Ordered reduction** (`sum`, `collect_into_vec`): per-task partials are
//!    stored in a slot indexed by task id and folded **in ascending task
//!    order** on the calling thread.  The fold tree is therefore fixed by the
//!    input length alone; running with 1 or N threads produces the same bits
//!    even for non-associative `f64` addition.
//!
//! This is the same contract the distributed executor proves at the shard
//! level (`ShardAxis::Rows` folds shard contributions in ascending global row
//! order); here it is enforced at the thread level.

use crate::registry::current_registry;
use std::iter::Sum;
use std::ops::Range;
use std::sync::Mutex;

/// Upper bound on the number of tasks one operation is cut into.  More tasks
/// than threads keeps the claim-based load balancing effective on ragged
/// workloads without swamping the injector.
const TARGET_TASKS: usize = 512;

/// Minimum number of *elements* a task should own before it is worth shipping
/// to another thread.  Tiny inputs collapse to a single task (which
/// [`crate::registry`] then runs inline, serially).
const MIN_TASK_ELEMS: usize = 1024;

/// Units of work per task for an input of `n_units` units, each covering
/// roughly `unit_elems` elements.
///
/// Depends only on `(n_units, unit_elems)` — **never** on the thread count —
/// which is what keeps task boundaries (and hence reduction order) identical
/// across pools.
fn units_per_task(n_units: usize, unit_elems: usize) -> usize {
    let by_target = n_units.div_ceil(TARGET_TASKS);
    let by_elems = MIN_TASK_ELEMS.div_ceil(unit_elems.max(1));
    by_target.max(by_elems).max(1)
}

/// A raw pointer that may cross threads.
///
/// # Safety invariant
///
/// Only ever used to materialise **disjoint** sub-slices of one live slice,
/// with the originating borrow held for the whole parallel call.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the whole
    /// wrapper — Rust 2021's disjoint capture would otherwise grab the bare
    /// `*mut T` field, which is not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Run `body(task)` for tasks `0..n_tasks` on the current pool.
fn run_tasks(n_tasks: usize, body: &(dyn Fn(usize) + Sync)) {
    current_registry().run_batch(n_tasks, body);
}

// ---------------------------------------------------------------------------
// Ranges: `(0..n).into_par_iter()`
// ---------------------------------------------------------------------------

/// Types convertible into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The parallel iterator produced.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
///
/// Range indices are treated as *heavy* units (each typically drives a whole
/// block of work, as in `gpu_sim::parallel_for`), so they are spread one-ish
/// per task rather than grouped by `MIN_TASK_ELEMS`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Apply `f` to every index, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let (start, len) = (self.range.start, self.range.len());
        if len == 0 {
            return;
        }
        let per = units_per_task(len, MIN_TASK_ELEMS);
        run_tasks(len.div_ceil(per), &|t| {
            let lo = start + t * per;
            let hi = (lo + per).min(start + len);
            for i in lo..hi {
                f(i);
            }
        });
    }

    /// Map every index through `f`, yielding a reducible parallel iterator.
    pub fn map<R, F>(self, f: F) -> ParMap<F, R>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParMap {
            range: self.range,
            f,
            _out: std::marker::PhantomData,
        }
    }
}

/// A mapped parallel range, ready for an **ordered** reduction.
pub struct ParMap<F, R> {
    range: Range<usize>,
    f: F,
    _out: std::marker::PhantomData<fn() -> R>,
}

impl<F, R> ParMap<F, R>
where
    F: Fn(usize) -> R + Sync,
    R: Send,
{
    /// Cut the range into tasks, compute one partial per task in parallel, and
    /// fold the partials **in ascending task order** on the calling thread.
    fn reduce_ordered<P, Fold>(self, fold_task: Fold) -> Vec<P>
    where
        P: Send,
        Fold: Fn(&F, Range<usize>) -> P + Sync,
    {
        let (start, len) = (self.range.start, self.range.len());
        let per = units_per_task(len, MIN_TASK_ELEMS);
        let n_tasks = len.div_ceil(per);
        let slots: Vec<Mutex<Option<P>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let f = &self.f;
        run_tasks(n_tasks, &|t| {
            let lo = start + t * per;
            let hi = (lo + per).min(start + len);
            *slots[t].lock().unwrap() = Some(fold_task(f, lo..hi));
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every task fills its slot")
            })
            .collect()
    }

    /// Sum the mapped values.
    ///
    /// Per-task partial sums are folded in ascending task order, so the result
    /// depends only on the range length — not the thread count.
    pub fn sum<S>(self) -> S
    where
        S: Send + Sum<R> + Sum<S>,
    {
        if self.range.is_empty() {
            return std::iter::empty::<R>().sum();
        }
        self.reduce_ordered(|f, task| task.map(f).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Collect the mapped values into `target` (cleared first), preserving
    /// index order exactly like the serial `collect`.
    pub fn collect_into_vec(self, target: &mut Vec<R>) {
        target.clear();
        if self.range.is_empty() {
            return;
        }
        let parts = self.reduce_ordered(|f, task| task.map(f).collect::<Vec<R>>());
        for part in parts {
            target.extend(part);
        }
    }
}

// ---------------------------------------------------------------------------
// Mutable slices: `par_iter_mut` / `par_chunks_mut`
// ---------------------------------------------------------------------------

/// `slice.par_iter_mut()` / `slice.par_chunks_mut(n)`: borrowing parallel
/// iterators over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut` elements.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel iterator over non-overlapping mutable chunks of `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable elements of a slice.
pub struct ParIterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair every element with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }

    /// Apply `f` to every element, in parallel.  Writes are disjoint, so the
    /// result is independent of scheduling by construction.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.enumerate().for_each(|(_, x)| f(x));
    }
}

/// Enumerated variant of [`ParIterMut`].
pub struct ParIterMutEnumerate<'a, T: Send> {
    slice: &'a mut [T],
}

impl<T: Send> ParIterMutEnumerate<'_, T> {
    /// Apply `f` to every `(index, &mut element)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let per = units_per_task(len, 1);
        let base = SendPtr(self.slice.as_mut_ptr());
        run_tasks(len.div_ceil(per), &|t| {
            let lo = t * per;
            let hi = (lo + per).min(len);
            // SAFETY: tasks cover disjoint index ranges of one mutable slice
            // whose borrow is held for the duration of `run_tasks`.
            let sub = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            for (k, x) in sub.iter_mut().enumerate() {
                f((lo + k, x));
            }
        });
    }
}

/// Parallel iterator over non-overlapping mutable chunks of a slice.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            chunk_size: self.chunk_size,
        }
    }

    /// Apply `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Apply `f` to every `(chunk_index, &mut chunk)` pair, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let chunk_size = self.chunk_size;
        let n_chunks = len.div_ceil(chunk_size);
        let per = units_per_task(n_chunks, chunk_size);
        let base = SendPtr(self.slice.as_mut_ptr());
        run_tasks(n_chunks.div_ceil(per), &|t| {
            let first = t * per;
            let last = (first + per).min(n_chunks);
            for c in first..last {
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(len);
                // SAFETY: chunks are non-overlapping sub-slices of one mutable
                // slice whose borrow is held for the duration of `run_tasks`.
                let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
                f((c, chunk));
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Shared slices: `par_iter` / `par_chunks`
// ---------------------------------------------------------------------------

/// `slice.par_iter()` / `slice.par_chunks(n)`: borrowing parallel iterators
/// over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&` elements.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Parallel iterator over non-overlapping shared chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be non-zero");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over shared elements of a slice.
pub struct ParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<T: Sync> ParIter<'_, T> {
    /// Apply `f` to every `(index, &element)` pair, in parallel.
    pub fn for_each_indexed<F>(self, f: F)
    where
        F: Fn(usize, &T) + Sync,
    {
        let slice = self.slice;
        if slice.is_empty() {
            return;
        }
        let per = units_per_task(slice.len(), 1);
        run_tasks(slice.len().div_ceil(per), &|t| {
            let lo = t * per;
            let hi = (lo + per).min(slice.len());
            for (i, x) in slice[lo..hi].iter().enumerate() {
                f(lo + i, x);
            }
        });
    }

    /// Apply `f` to every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&T) + Sync,
    {
        self.for_each_indexed(|_, x| f(x));
    }
}

/// Parallel iterator over non-overlapping shared chunks of a slice.
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<T: Sync> ParChunks<'_, T> {
    /// Apply `f` to every `(chunk_index, &chunk)` pair, in parallel.
    pub fn for_each_indexed<F>(self, f: F)
    where
        F: Fn(usize, &[T]) + Sync,
    {
        let (slice, chunk_size) = (self.slice, self.chunk_size);
        if slice.is_empty() {
            return;
        }
        let n_chunks = slice.len().div_ceil(chunk_size);
        let per = units_per_task(n_chunks, chunk_size);
        run_tasks(n_chunks.div_ceil(per), &|t| {
            let first = t * per;
            let last = (first + per).min(n_chunks);
            for c in first..last {
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(slice.len());
                f(c, &slice[lo..hi]);
            }
        });
    }

    /// Apply `f` to every chunk, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&[T]) + Sync,
    {
        self.for_each_indexed(|_, chunk| f(chunk));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_per_task_ignores_thread_count_inputs() {
        // Pure function of (n_units, unit_elems): same answer every call.
        assert_eq!(units_per_task(10, 1), MIN_TASK_ELEMS);
        assert_eq!(units_per_task(1 << 20, 1), (1 << 20) / TARGET_TASKS);
        assert_eq!(units_per_task(100, 4096), 1);
        assert_eq!(units_per_task(0, 0), MIN_TASK_ELEMS);
    }

    #[test]
    fn par_iter_mut_enumerate_writes_global_indices() {
        let mut data = vec![0usize; 10_000];
        data.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_chunks_mut_covers_a_ragged_tail() {
        let mut data = vec![0u32; 10_001];
        data.par_chunks_mut(64).enumerate().for_each(|(c, chunk)| {
            for x in chunk {
                *x = c as u32;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x as usize, i / 64, "element {i}");
        }
    }

    #[test]
    fn collect_into_vec_preserves_order() {
        let mut out = vec![1usize; 3]; // stale contents must be cleared
        (0..5_000usize)
            .into_par_iter()
            .map(|i| i * i)
            .collect_into_vec(&mut out);
        assert_eq!(out.len(), 5_000);
        for (i, x) in out.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn float_sum_is_identical_across_repeats() {
        // The ordered fold must give one fixed answer for a fixed length.
        let reference: f64 = (0..100_000usize)
            .into_par_iter()
            .map(|i| (i as f64).sin())
            .sum();
        for _ in 0..3 {
            let again: f64 = (0..100_000usize)
                .into_par_iter()
                .map(|i| (i as f64).sin())
                .sum();
            assert_eq!(reference.to_bits(), again.to_bits());
        }
    }

    #[test]
    fn shared_par_chunks_sees_every_chunk() {
        let data: Vec<u32> = (0..10_000).collect();
        let seen = Mutex::new(vec![false; data.len().div_ceil(128)]);
        data.par_chunks(128).for_each_indexed(|c, chunk| {
            assert_eq!(chunk[0], (c * 128) as u32);
            seen.lock().unwrap()[c] = true;
        });
        assert!(seen.into_inner().unwrap().into_iter().all(|b| b));
    }
}
