//! Threaded, API-compatible shim for the subset of `rayon` this workspace
//! uses — a real `std::thread` work-stealing pool, built on std alone because
//! the build container has no crates.io access.
//!
//! # What call sites get
//!
//! The rayon surface the workspace depends on compiles unchanged and now runs
//! on real threads: [`prelude::IntoParallelIterator::into_par_iter`] on
//! `Range<usize>`, [`prelude::ParallelSliceMut::par_iter_mut`] /
//! [`prelude::ParallelSliceMut::par_chunks_mut`] on slices, plus [`join`],
//! [`scope`] and an explicit [`ThreadPoolBuilder`] honoring the
//! `RAYON_NUM_THREADS` environment variable.
//!
//! # Determinism
//!
//! Unlike the real rayon, this shim guarantees that **every parallel operation
//! is bit-for-bit identical across thread counts**: task boundaries are a pure
//! function of input length (see [`iter`]), disjoint-write loops are immune to
//! scheduling order, and reductions fold per-task partials in ascending task
//! order.  The workspace's determinism suites pin this contract.
//!
//! # Example
//!
//! ```
//! use rayon::prelude::*;
//!
//! // Fork-join over two halves of a buffer.
//! let mut data = vec![0u64; 1 << 14];
//! let (lo, hi) = data.split_at_mut(1 << 13);
//! rayon::join(
//!     || lo.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64),
//!     || hi.par_iter_mut().for_each(|x| *x = u64::MAX),
//! );
//! assert_eq!(data[5], 5);
//! assert_eq!(data[1 << 13], u64::MAX);
//!
//! // Dynamic task trees via scope; an explicit pool pins the thread count.
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
//! let sum: usize = pool.install(|| {
//!     let partials = std::sync::Mutex::new(Vec::new());
//!     rayon::scope(|s| {
//!         for block in 0..4usize {
//!             let partials = &partials;
//!             s.spawn(move |_| {
//!                 partials.lock().unwrap().push(block * 100);
//!             });
//!         }
//!     });
//!     partials.into_inner().unwrap().into_iter().sum()
//! });
//! assert_eq!(sum, 600);
//! ```
//!
//! # Divergences from rayon (documented, deliberate)
//!
//! * [`ThreadPool::install`] runs its closure on the *calling* thread, so no
//!   `Send` bound is required on the closure or its result.
//! * [`scope`] runs the scope body on the calling thread and executes spawned
//!   tasks when the body returns (repeating until no task spawns another),
//!   rather than eagerly — observable only through side-channel timing.
//! * [`join`] and all `for_each`/reductions are deterministic across thread
//!   counts, a stronger guarantee than rayon makes.

#![warn(missing_docs)]

pub mod iter;
mod registry;

pub use registry::{pool_stats, PoolStats, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

use std::sync::Mutex;

/// The rayon prelude: parallel-iterator entry points as extension traits.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Total parallelism of the pool the current thread dispatches to (the global
/// pool, or the installed one inside [`ThreadPool::install`]).  A value of 1
/// means all `par_*` calls run inline on the caller.
pub fn current_num_threads() -> usize {
    registry::current_registry().num_threads()
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// The caller always executes `a` (and `b` too if no worker steals it); the
/// call returns only when both closures have finished.  Panics in either
/// closure propagate to the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = registry::current_registry();
    if registry.num_threads() <= 1 {
        return (a(), b());
    }
    let closures = (Mutex::new(Some(a)), Mutex::new(Some(b)));
    let results: (Mutex<Option<RA>>, Mutex<Option<RB>>) = (Mutex::new(None), Mutex::new(None));
    registry.run_batch(2, &|t| {
        if t == 0 {
            let f = closures.0.lock().unwrap().take().expect("task 0 runs once");
            *results.0.lock().unwrap() = Some(f());
        } else {
            let f = closures.1.lock().unwrap().take().expect("task 1 runs once");
            *results.1.lock().unwrap() = Some(f());
        }
    });
    (
        results.0.into_inner().unwrap().expect("join closure a ran"),
        results.1.into_inner().unwrap().expect("join closure b ran"),
    )
}

/// A task spawned onto a [`Scope`], boxed for the deferred-run queue.
type ScopeTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scope for spawning borrowing tasks; see [`scope`].
pub struct Scope<'scope> {
    /// Tasks spawned but not yet executed.
    queue: Mutex<Vec<ScopeTask<'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Queue `body` to run before the enclosing [`scope`] call returns.  The
    /// task may borrow from the enclosing stack frame and may spawn further
    /// tasks onto the same scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.queue.lock().unwrap().push(Box::new(body));
    }
}

/// Create a scope whose spawned tasks may borrow non-`'static` data; all tasks
/// complete before `scope` returns.
///
/// The scope body runs on the calling thread.  Spawned tasks execute (in
/// parallel, on the current pool) once the body returns; tasks spawned *by*
/// tasks run in subsequent rounds until the scope is drained.  Task panics
/// propagate to the caller.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        queue: Mutex::new(Vec::new()),
    };
    let result = op(&s);
    loop {
        let tasks = std::mem::take(&mut *s.queue.lock().unwrap());
        if tasks.is_empty() {
            break;
        }
        let slots: Vec<Mutex<Option<ScopeTask<'scope>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        registry::current_registry().run_batch(slots.len(), &|t| {
            let body = slots[t].lock().unwrap().take().expect("task runs once");
            body(&s);
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("pool builds")
    }

    #[test]
    fn par_chunks_mut_visits_every_chunk_in_order() {
        let mut data = [0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for slot in chunk {
                *slot = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_on_range_behaves_like_iter() {
        let sum: usize = (0..10usize).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 90);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn install_pins_the_thread_count() {
        for n in [1, 2, 4, 7] {
            let p = pool(n);
            assert_eq!(p.current_num_threads(), n);
            p.install(|| assert_eq!(super::current_num_threads(), n));
        }
    }

    #[test]
    fn work_actually_lands_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let p = pool(4);
        let seen = Mutex::new(HashSet::new());
        p.install(|| {
            (0..1_000_000usize).into_par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        });
        // With 4 claimants and ~512 tasks the caller plus at least one worker
        // must participate.
        assert!(seen.into_inner().unwrap().len() >= 2);
    }

    #[test]
    fn results_are_bitwise_identical_across_thread_counts() {
        let reference = {
            let p = pool(1);
            p.install(compute)
        };
        for n in [2, 4, 7] {
            let p = pool(n);
            let got = p.install(compute);
            assert_eq!(got.len(), reference.len());
            for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "element {i} @ {n} threads");
            }
        }

        fn compute() -> Vec<f64> {
            let mut data = vec![0.0f64; 40_000];
            data.par_iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = (i as f64).sin());
            data.par_chunks_mut(100).enumerate().for_each(|(c, chunk)| {
                let s: f64 = chunk.iter().sum();
                for x in chunk {
                    *x += s * (c as f64);
                }
            });
            let total: f64 = (0..data.len()).into_par_iter().map(|i| data[i] * 0.5).sum();
            data.push(total);
            data
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let p = pool(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..10_000usize).into_par_iter().for_each(|i| {
                    if i == 7_777 {
                        panic!("boom at {i}");
                    }
                });
            });
        }));
        assert!(caught.is_err(), "the task panic must reach the caller");
        // The pool must remain usable after a propagated panic.
        let sum: usize = p.install(|| (0..100usize).into_par_iter().map(|x| x * 2).sum());
        assert_eq!(sum, 9900);
    }

    #[test]
    fn scope_runs_spawned_and_nested_tasks() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        counter.fetch_add(10, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 80);
    }

    #[test]
    fn rayon_num_threads_env_is_honored_by_builder_default() {
        // The global pool reads RAYON_NUM_THREADS; here we only check the
        // builder's explicit path stays consistent with current_num_threads.
        let p = pool(3);
        p.install(|| {
            assert_eq!(super::current_num_threads(), 3);
            let nested: usize = (0..10usize).into_par_iter().map(|x| x + 1).sum();
            assert_eq!(nested, 55);
        });
    }

    #[test]
    fn pool_stats_count_batches_and_tasks_monotonically() {
        let before = super::pool_stats();
        let p = pool(1);
        p.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {});
        });
        let serial = super::pool_stats();
        assert!(serial.batches > before.batches);
        assert!(serial.tasks > before.tasks);
        // A pool of one takes the inline fast path (other tests may add
        // non-inline batches concurrently, so only the direction is pinned).
        assert!(serial.inline_tasks > before.inline_tasks);

        let p = pool(4);
        p.install(|| {
            (0..100_000usize).into_par_iter().for_each(|_| {});
        });
        let parallel = super::pool_stats();
        assert!(parallel.tasks > serial.tasks);
        // The multi-thread batch above must not be counted as inline-only.
        assert!(parallel.tasks - serial.tasks > parallel.inline_tasks - serial.inline_tasks);
    }

    #[test]
    fn join_nested_inside_parallel_work_completes() {
        let p = pool(4);
        let out = p.install(|| {
            super::join(
                || {
                    (0..100_000usize)
                        .into_par_iter()
                        .map(|x| x % 7)
                        .sum::<usize>()
                },
                || {
                    (0..50_000usize)
                        .into_par_iter()
                        .map(|x| x % 3)
                        .sum::<usize>()
                },
            )
        });
        let want_a: usize = (0..100_000usize).map(|x| x % 7).sum();
        let want_b: usize = (0..50_000usize).map(|x| x % 3).sum();
        assert_eq!(out, (want_a, want_b));
    }
}
