//! Sequential, API-compatible shim for the subset of `rayon` this workspace uses.
//!
//! The build container has no crates.io access, so the real `rayon` cannot be
//! fetched.  This shim keeps the call sites (`into_par_iter`, `par_iter_mut`,
//! `par_chunks_mut`) compiling unchanged by handing back ordinary sequential
//! iterators, which already provide `enumerate`, `map`, `for_each`, `collect`,
//! and friends.  Execution is sequential and therefore deterministic; the
//! simulated-device cost model this workspace measures is unaffected.

/// The rayon prelude: parallel-iterator entry points as extension traits.
pub mod prelude {
    /// `self.into_par_iter()` — sequential stand-in for rayon's consuming
    /// parallel iterator; yields the type's ordinary iterator.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Convert into a "parallel" (here: sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// Indexed-iterator methods rayon puts on `IndexedParallelIterator`.
    pub trait IndexedParallelIterator: Iterator + Sized {
        /// Collect into an existing vector, replacing its contents.
        fn collect_into_vec(self, target: &mut Vec<Self::Item>) {
            target.clear();
            target.extend(self);
        }
    }

    impl<I: Iterator + Sized> IndexedParallelIterator for I {}

    /// `slice.par_iter_mut()` / `slice.par_chunks_mut(n)` — sequential
    /// stand-ins for rayon's borrowing parallel slice iterators.
    pub trait ParallelSliceMut<T> {
        /// Mutable element iterator (sequential).
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Mutable chunk iterator (sequential).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// `slice.par_iter()` — sequential stand-in for the shared-slice variant.
    pub trait ParallelSlice<T> {
        /// Shared element iterator (sequential).
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Shared chunk iterator (sequential).
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }
}

/// Number of "worker threads" — always 1 in the sequential shim.
pub fn current_num_threads() -> usize {
    1
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk_in_order() {
        let mut data = [0u32; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for slot in chunk {
                *slot = i as u32;
            }
        });
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_on_range_behaves_like_iter() {
        let sum: usize = (0..10usize).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(sum, 90);
    }

    #[test]
    fn join_runs_both_closures() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
