//! `parking_lot` shim backed by `std::sync::Mutex`.
//!
//! Matches the two parking_lot behaviours the workspace relies on: `lock()`
//! returns the guard directly (no `Result`), and a poisoned mutex is not an
//! error (the shim recovers the inner value).

use std::fmt;
use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free `lock` signature.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }
}
